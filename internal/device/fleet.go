package device

import (
	"fmt"
	"strconv"
	"strings"
)

// ExpandFleet parses a fleet spec into a per-node profile-name list of
// exactly `nodes` entries.
//
// Grammar (the -fleet flag):
//
//	spec  := group ("," group)*
//	group := name [":" count]
//
// A bare single name ("bf3") means every node; otherwise the group counts
// (default 1 each) must sum to the node count. Examples for 4 nodes:
//
//	"bf2"            -> [bf2 bf2 bf2 bf2]
//	"bf2:2,bf3:2"    -> [bf2 bf2 bf3 bf3]
//	"bf3,bf2:3"      -> [bf3 bf2 bf2 bf2]
//
// Every name must be registered.
func ExpandFleet(spec string, nodes int) ([]string, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("device: fleet needs a positive node count, got %d", nodes)
	}
	groups := strings.Split(spec, ",")
	if len(groups) == 1 && !strings.Contains(groups[0], ":") {
		name := strings.TrimSpace(groups[0])
		if _, err := Lookup(name); err != nil {
			return nil, err
		}
		out := make([]string, nodes)
		for i := range out {
			out[i] = name
		}
		return out, nil
	}
	var out []string
	for _, g := range groups {
		name, count := strings.TrimSpace(g), 1
		if i := strings.IndexByte(name, ':'); i >= 0 {
			n, err := strconv.Atoi(name[i+1:])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("device: bad fleet group %q (want name:count)", g)
			}
			name, count = name[:i], n
		}
		if _, err := Lookup(name); err != nil {
			return nil, err
		}
		for i := 0; i < count; i++ {
			out = append(out, name)
		}
	}
	if len(out) != nodes {
		return nil, fmt.Errorf("device: fleet spec %q names %d nodes, cluster has %d", spec, len(out), nodes)
	}
	return out, nil
}

// Resolve maps a per-node name list to profiles. Empty names resolve to
// fallback (the homogeneous base profile).
func Resolve(names []string, fallback Profile) ([]Profile, error) {
	out := make([]Profile, len(names))
	for i, n := range names {
		if n == "" {
			out[i] = fallback
			continue
		}
		p, err := Lookup(n)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}
