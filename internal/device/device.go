// Package device is the vendor-agnostic SmartNIC substrate: every
// hardware-dependent constant the simulator used to hard-code (host and
// ARM injection overheads, line rates, cross-GVMI support, staging memory
// bandwidth, proxy worker counts) lives in a named Profile, and the rest
// of the stack — cluster assembly, datapath selection, the policy engine,
// the benches — consumes capabilities instead of constants.
//
// The paper's entire cost model hangs on one hard-coded fact: BlueField-2
// ARM cores pay ~2.4x the per-message injection overhead of host cores.
// "Demystifying Datapath Accelerator Enhanced Off-path SmartNIC"
// (PAPERS.md) shows off-path parts whose DSA engines bypass the ARM cores
// entirely, and the dpu-operator model manages BlueField-2/3, Intel IPU
// and Octeon behind one plugin interface. This package mirrors that: a
// registry of profiles (bf2, bf3, ipu-e2100, dsa-offpath), per-node
// assignment for mixed fleets, and capability accessors for the layers
// that must behave differently per device.
//
// The bf2 profile IS the paper's testbed: cluster.DefaultConfig is a
// lookup of it, pinned bit-exactly against the pre-refactor constants by
// the equivalence tests in internal/cluster and the checked-in
// BENCH_fig13.json.
package device

import (
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// Profile describes one SmartNIC/DPU part: everything the simulator needs
// to model a node built around it.
type Profile struct {
	// Name is the registry key ("" for ad-hoc profiles).
	Name string

	// ARMCores is the number of wimpy cores on the NIC SoC available to
	// proxy workers; ARMSpeed is their single-thread speed relative to a
	// host core (1.0 = host-equivalent). Informational today — the
	// injection overheads below already bake the posting-speed difference
	// in — and reported in the capability matrix.
	ARMCores int
	ARMSpeed float64

	// HostPort / DPUPort are the injection parameters of the node's
	// host-driven HCA port and its NIC-core-driven port. The overhead gap
	// between them is the paper's Figure 2/3 observation.
	HostPort fabric.Params
	DPUPort  fabric.Params

	// HasDSA reports a hardware DMA/DSA engine that posts transfers
	// without involving the ARM cores; DSAPort is its injection cost
	// (meaningful only when HasDSA). Engine-driven posting skips the
	// ARM WQE path, so DSAPort.Overhead is typically below even the
	// host port's.
	HasDSA  bool
	DSAPort fabric.Params

	// CrossGVMI reports support for cross-function memory registration
	// (NVIDIA's cross-GVMI mkeys). Profiles without it cannot run the
	// paper's proposed zero-copy path; datapath resolution falls back to
	// the staged path (or the DSA engine when present).
	CrossGVMI bool

	// StagingGBps is the NIC-local DRAM bandwidth backing staged-path
	// bounce buffers, in bytes/ns.
	StagingGBps float64

	// ProxiesPerDPU is the default number of proxy worker processes the
	// part runs comfortably.
	ProxiesPerDPU int

	// Fabric is the interconnect generation the part ships with; used by
	// homogeneous-cluster lookups (a mixed fleet shares the base
	// profile's fabric — there is one switch).
	Fabric fabric.Config
}

// OffloadPenalty is the ratio of NIC-core to host-core injection overhead
// — the "~2.4x" of the paper for bf2. The capability-aware policy scales
// its size cutoffs by this ratio relative to the bf2 baseline.
func (p Profile) OffloadPenalty() float64 {
	if p.HostPort.Overhead <= 0 {
		return 1
	}
	return float64(p.DPUPort.Overhead) / float64(p.HostPort.Overhead)
}

// EngineOverhead returns the injection overhead of the cheapest
// NIC-resident posting path: the DSA engine when present, the ARM-driven
// port otherwise.
func (p Profile) EngineOverhead() sim.Time {
	if p.HasDSA {
		return p.DSAPort.Overhead
	}
	return p.DPUPort.Overhead
}

// Generic returns the capability view of a cluster configured with raw
// port parameters instead of a named profile: full capabilities (the
// pre-profile simulator always had cross-GVMI and never a DSA engine),
// bf2-class core counts. It keeps legacy Config values behaving exactly
// as before the substrate existed.
func Generic(host, dpu fabric.Params) Profile {
	return Profile{
		HostPort:      host,
		DPUPort:       dpu,
		ARMCores:      8,
		ARMSpeed:      1 / 2.4,
		CrossGVMI:     true,
		StagingGBps:   12.8,
		ProxiesPerDPU: 8,
		Fabric:        fabric.DefaultConfig(),
	}
}

// registry holds the named profiles. Values are returned by copy;
// profiles are immutable after init.
var registry = map[string]Profile{
	// bf2 is the paper's platform: BlueField-2 (8x Cortex-A72) on HDR
	// InfiniBand. These are the exact pre-refactor constants
	// (fabric.HostPortParams / fabric.DPUPortParams and
	// cluster.DefaultConfig), pinned by the equivalence tests.
	"bf2": {
		Name:          "bf2",
		ARMCores:      8,
		ARMSpeed:      1 / 2.4,
		HostPort:      fabric.Params{Overhead: 250 * sim.Nanosecond, GBps: 12.5},
		DPUPort:       fabric.Params{Overhead: 600 * sim.Nanosecond, GBps: 12.5},
		CrossGVMI:     true,
		StagingGBps:   12.8,
		ProxiesPerDPU: 8,
		Fabric:        fabric.DefaultConfig(),
	},
	// bf3 is the paper's Section X future-work platform: BlueField-3
	// (16x Cortex-A78, roughly half the posting overhead) on NDR. The
	// exact pre-refactor fabric.HostPortParamsNDR / DPUPortParamsBF3
	// constants, pinned by the ext-bf3 figure guard.
	"bf3": {
		Name:          "bf3",
		ARMCores:      16,
		ARMSpeed:      220.0 / 350.0,
		HostPort:      fabric.Params{Overhead: 220 * sim.Nanosecond, GBps: 25},
		DPUPort:       fabric.Params{Overhead: 350 * sim.Nanosecond, GBps: 25},
		CrossGVMI:     true,
		StagingGBps:   38.4,
		ProxiesPerDPU: 8,
		Fabric:        fabric.NDRConfig(),
	},
	// ipu-e2100 models an Intel IPU E2100-class part: 200G line rate and
	// competent cores, but no cross-GVMI analogue — the proposed
	// zero-copy path is unavailable and every offloaded transfer rides
	// the staged path (datapath.Resolve enforces the fallback).
	"ipu-e2100": {
		Name:          "ipu-e2100",
		ARMCores:      16,
		ARMSpeed:      0.5,
		HostPort:      fabric.Params{Overhead: 240 * sim.Nanosecond, GBps: 25},
		DPUPort:       fabric.Params{Overhead: 520 * sim.Nanosecond, GBps: 25},
		CrossGVMI:     false,
		StagingGBps:   25.6,
		ProxiesPerDPU: 8,
		Fabric:        fabric.NDRConfig(),
	},
	// dsa-offpath models the "Demystifying DSA" off-path part: few weak
	// wimpy cores, no cross-function registration, but a hardware DSA
	// engine that posts host-memory transfers below even the host port's
	// overhead. Cross-GVMI requests resolve to the engine path.
	"dsa-offpath": {
		Name:          "dsa-offpath",
		ARMCores:      4,
		ARMSpeed:      0.35,
		HostPort:      fabric.Params{Overhead: 250 * sim.Nanosecond, GBps: 12.5},
		DPUPort:       fabric.Params{Overhead: 600 * sim.Nanosecond, GBps: 12.5},
		HasDSA:        true,
		DSAPort:       fabric.Params{Overhead: 180 * sim.Nanosecond, GBps: 12.5},
		CrossGVMI:     false,
		StagingGBps:   12.8,
		ProxiesPerDPU: 4,
		Fabric:        fabric.DefaultConfig(),
	},
}

// BaselineName names the profile every size cutoff in the adaptive policy
// was originally tuned on.
const BaselineName = "bf2"

// Baseline returns the tuning-anchor profile (bf2).
func Baseline() Profile { return registry[BaselineName] }

// Lookup returns the named profile.
func Lookup(name string) (Profile, error) {
	p, ok := registry[name]
	if !ok {
		return Profile{}, fmt.Errorf("device: unknown profile %q (have %v)", name, Names())
	}
	return p, nil
}

// MustLookup is Lookup that panics on unknown names (for callers that
// validated the name at flag-parse time).
func MustLookup(name string) Profile {
	p, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Names returns the registered profile names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Merge folds a fleet's profiles into one fleet-consistent capability
// summary: boolean capabilities AND (a path must exist everywhere to be a
// fleet-wide choice), overheads take the worst (max), bandwidths the
// slowest (min). Collective operations must make the same
// host-vs-offload decision on every rank, so fleet-global rules consume
// this merged view instead of any single node's.
func Merge(ps []Profile) Profile {
	if len(ps) == 0 {
		return Baseline()
	}
	m := ps[0]
	m.Name = "fleet"
	for _, p := range ps[1:] {
		m.CrossGVMI = m.CrossGVMI && p.CrossGVMI
		m.HasDSA = m.HasDSA && p.HasDSA
		if p.ARMCores < m.ARMCores {
			m.ARMCores = p.ARMCores
		}
		if p.ARMSpeed < m.ARMSpeed {
			m.ARMSpeed = p.ARMSpeed
		}
		m.HostPort = worsePort(m.HostPort, p.HostPort)
		m.DPUPort = worsePort(m.DPUPort, p.DPUPort)
		m.DSAPort = worsePort(m.DSAPort, p.DSAPort)
		if p.StagingGBps < m.StagingGBps {
			m.StagingGBps = p.StagingGBps
		}
		if p.ProxiesPerDPU < m.ProxiesPerDPU {
			m.ProxiesPerDPU = p.ProxiesPerDPU
		}
	}
	return m
}

// worsePort combines two injection parameter sets pessimistically.
func worsePort(a, b fabric.Params) fabric.Params {
	if b.Overhead > a.Overhead {
		a.Overhead = b.Overhead
	}
	if b.GBps > 0 && (a.GBps <= 0 || b.GBps < a.GBps) {
		a.GBps = b.GBps
	}
	return a
}
