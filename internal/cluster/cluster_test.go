package cluster

import (
	"reflect"
	"testing"

	"repro/internal/device"
	"repro/internal/fabric"
	"repro/internal/gvmi"
	"repro/internal/sim"
	"repro/internal/verbs"
)

func TestTopologyMapping(t *testing.T) {
	c := New(DefaultConfig(4, 32))
	if got := c.Cfg.NP(); got != 128 {
		t.Fatalf("NP = %d, want 128", got)
	}
	if c.NodeOfRank(0) != 0 || c.NodeOfRank(31) != 0 || c.NodeOfRank(32) != 1 || c.NodeOfRank(127) != 3 {
		t.Fatal("block rank->node mapping wrong")
	}
	if c.LocalRank(33) != 1 {
		t.Fatalf("LocalRank(33) = %d, want 1", c.LocalRank(33))
	}
	if !c.SameNode(0, 31) || c.SameNode(31, 32) {
		t.Fatal("SameNode wrong")
	}
}

func TestProxyMapping(t *testing.T) {
	cfg := DefaultConfig(2, 32)
	cfg.ProxiesPerDPU = 8
	c := New(cfg)
	// proxy_local_rank = local_rank % proxies_per_dpu (Section VII-A).
	if c.ProxyOfRank(0) != 0 || c.ProxyOfRank(8) != 0 || c.ProxyOfRank(9) != 1 || c.ProxyOfRank(39) != 7 {
		t.Fatal("proxy mapping wrong")
	}
}

func TestSitesSeparateSpacesSharedEndpoints(t *testing.T) {
	c := New(DefaultConfig(2, 2))
	a := c.NewHostSite(0, "a")
	b := c.NewHostSite(0, "b")
	d := c.NewDPUSite(0, "d")
	if a.Space == b.Space {
		t.Fatal("host sites share a space")
	}
	if a.Ctx.Endpoint() != b.Ctx.Endpoint() {
		t.Fatal("host sites on one node must share the host port")
	}
	if d.Ctx.Endpoint() == a.Ctx.Endpoint() {
		t.Fatal("DPU site must use the DPU port")
	}
	if !d.OnDPU || a.OnDPU {
		t.Fatal("OnDPU flags wrong")
	}
}

func TestSiteNewCtxSharesEndpointAndSpace(t *testing.T) {
	c := New(DefaultConfig(1, 1))
	s := c.NewHostSite(0, "h")
	ctx2 := s.NewCtx("offload")
	if ctx2.Endpoint() != s.Ctx.Endpoint() || ctx2.Space() != s.Ctx.Space() {
		t.Fatal("NewCtx must share endpoint and space")
	}
	if ctx2 == s.Ctx {
		t.Fatal("NewCtx returned the same context")
	}
}

func TestCopyCost(t *testing.T) {
	c := New(DefaultConfig(1, 1))
	if got := c.CopyCost(6000); got != sim.Time(1000) {
		t.Fatalf("CopyCost(6000) = %v, want 1000ns at 6 GB/s", got)
	}
	cfg := DefaultConfig(1, 1)
	cfg.HostCopyGBps = 0
	if got := New(cfg).CopyCost(1 << 20); got != 0 {
		t.Fatalf("zero-rate CopyCost = %v", got)
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig(8, 32)
	if cfg.ProxiesPerDPU <= 0 || cfg.HostCopyGBps <= 0 || cfg.ShmLatency <= 0 {
		t.Fatalf("bad defaults: %+v", cfg)
	}
	if cfg.DPUPort.Overhead <= cfg.HostPort.Overhead {
		t.Fatal("DPU port must have higher per-message overhead than host port")
	}
}

func TestBlueField3ConfigFaster(t *testing.T) {
	bf2 := DefaultConfig(2, 2)
	bf3 := BlueField3Config(2, 2)
	if bf3.DPUPort.Overhead >= bf2.DPUPort.Overhead {
		t.Fatal("BF3 ARM posting must be faster than BF2")
	}
	if bf3.HostPort.GBps <= bf2.HostPort.GBps {
		t.Fatal("NDR must be faster than HDR")
	}
	if bf3.Fabric.LoopbackGBps <= bf2.Fabric.LoopbackGBps {
		t.Fatal("Gen5 loopback must be faster")
	}
}

// TestProfileEquivalence pins the device-profile lookups to the exact
// pre-substrate hard-coded configurations: DefaultConfig must equal the
// old fabric.HostPortParams/DPUPortParams testbed and BlueField3Config
// the old HostPortParamsNDR/DPUPortParamsBF3 one, field for field. The
// old constants are re-hard-coded here on purpose — this test is the
// record of what the refactor must not move.
func TestProfileEquivalence(t *testing.T) {
	legacyDefault := Config{
		Nodes:         4,
		PPN:           8,
		ProxiesPerDPU: 8,
		Fabric:        fabric.DefaultConfig(),
		HostPort:      fabric.Params{Overhead: 250 * sim.Nanosecond, GBps: 12.5},
		DPUPort:       fabric.Params{Overhead: 600 * sim.Nanosecond, GBps: 12.5},
		Verbs:         verbs.DefaultCosts(),
		GVMI:          gvmi.DefaultCosts(),
		BackedPayload: true,
		HostCopyGBps:  6.0,
		ShmLatency:    200 * sim.Nanosecond,
	}
	if got := DefaultConfig(4, 8); !reflect.DeepEqual(got, legacyDefault) {
		t.Fatalf("DefaultConfig diverged from the pre-substrate testbed:\ngot  %+v\nwant %+v", got, legacyDefault)
	}

	legacyBF3 := legacyDefault
	legacyBF3.Fabric = fabric.NDRConfig()
	legacyBF3.HostPort = fabric.Params{Overhead: 220 * sim.Nanosecond, GBps: 25}
	legacyBF3.DPUPort = fabric.Params{Overhead: 350 * sim.Nanosecond, GBps: 25}
	if got := BlueField3Config(4, 8); !reflect.DeepEqual(got, legacyBF3) {
		t.Fatalf("BlueField3Config diverged from the pre-substrate platform:\ngot  %+v\nwant %+v", got, legacyBF3)
	}

	// The lookups really are profile-driven, not parallel copies.
	if got := ProfileConfig("bf2", 4, 8); !reflect.DeepEqual(got, legacyDefault) {
		t.Fatalf("ProfileConfig(bf2) != DefaultConfig")
	}
	if got := FromProfile(device.MustLookup("bf3"), 4, 8); !reflect.DeepEqual(got, legacyBF3) {
		t.Fatalf("FromProfile(bf3) != BlueField3Config")
	}
}

// A cluster built without NodeProfiles reports generic full-capability
// profiles, and one built with a mixed NodeProfiles list reports the named
// profile per node (with the DSA endpoint only where the part has one).
func TestNodeProfileAssignment(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	cfg.NodeProfiles = []string{"bf2", "dsa-offpath"}
	c := New(cfg)
	if got := c.ProfileOf(0).Name; got != "bf2" {
		t.Fatalf("node 0 profile = %q, want bf2", got)
	}
	if got := c.ProfileOf(1).Name; got != "dsa-offpath" {
		t.Fatalf("node 1 profile = %q, want dsa-offpath", got)
	}
	if c.Nodes[0].DSAEP != nil {
		t.Fatal("bf2 node grew a DSA endpoint")
	}
	if c.Nodes[1].DSAEP == nil {
		t.Fatal("dsa-offpath node is missing its DSA endpoint")
	}
	fleet := c.FleetProfile()
	if fleet.CrossGVMI || fleet.HasDSA {
		t.Fatalf("bf2+dsa-offpath fleet merge = gvmi:%v dsa:%v, want neither", fleet.CrossGVMI, fleet.HasDSA)
	}

	labels := c.DeviceLabels()
	if labels["n0.host"] != "bf2" || labels["n1.dsa"] != "dsa-offpath" {
		t.Fatalf("device labels wrong: %v", labels)
	}

	// Legacy cluster: generic profiles, no labels, full caps everywhere.
	plain := New(DefaultConfig(2, 1))
	if name := plain.ProfileOf(0).Name; name != "" {
		t.Fatalf("unprofiled node is named %q", name)
	}
	if !plain.FleetProfile().CrossGVMI {
		t.Fatal("unprofiled fleet lost cross-GVMI")
	}
	if len(plain.DeviceLabels()) != 0 {
		t.Fatalf("unprofiled cluster emitted device labels: %v", plain.DeviceLabels())
	}
}
