package cluster

import (
	"testing"

	"repro/internal/sim"
)

func TestTopologyMapping(t *testing.T) {
	c := New(DefaultConfig(4, 32))
	if got := c.Cfg.NP(); got != 128 {
		t.Fatalf("NP = %d, want 128", got)
	}
	if c.NodeOfRank(0) != 0 || c.NodeOfRank(31) != 0 || c.NodeOfRank(32) != 1 || c.NodeOfRank(127) != 3 {
		t.Fatal("block rank->node mapping wrong")
	}
	if c.LocalRank(33) != 1 {
		t.Fatalf("LocalRank(33) = %d, want 1", c.LocalRank(33))
	}
	if !c.SameNode(0, 31) || c.SameNode(31, 32) {
		t.Fatal("SameNode wrong")
	}
}

func TestProxyMapping(t *testing.T) {
	cfg := DefaultConfig(2, 32)
	cfg.ProxiesPerDPU = 8
	c := New(cfg)
	// proxy_local_rank = local_rank % proxies_per_dpu (Section VII-A).
	if c.ProxyOfRank(0) != 0 || c.ProxyOfRank(8) != 0 || c.ProxyOfRank(9) != 1 || c.ProxyOfRank(39) != 7 {
		t.Fatal("proxy mapping wrong")
	}
}

func TestSitesSeparateSpacesSharedEndpoints(t *testing.T) {
	c := New(DefaultConfig(2, 2))
	a := c.NewHostSite(0, "a")
	b := c.NewHostSite(0, "b")
	d := c.NewDPUSite(0, "d")
	if a.Space == b.Space {
		t.Fatal("host sites share a space")
	}
	if a.Ctx.Endpoint() != b.Ctx.Endpoint() {
		t.Fatal("host sites on one node must share the host port")
	}
	if d.Ctx.Endpoint() == a.Ctx.Endpoint() {
		t.Fatal("DPU site must use the DPU port")
	}
	if !d.OnDPU || a.OnDPU {
		t.Fatal("OnDPU flags wrong")
	}
}

func TestSiteNewCtxSharesEndpointAndSpace(t *testing.T) {
	c := New(DefaultConfig(1, 1))
	s := c.NewHostSite(0, "h")
	ctx2 := s.NewCtx("offload")
	if ctx2.Endpoint() != s.Ctx.Endpoint() || ctx2.Space() != s.Ctx.Space() {
		t.Fatal("NewCtx must share endpoint and space")
	}
	if ctx2 == s.Ctx {
		t.Fatal("NewCtx returned the same context")
	}
}

func TestCopyCost(t *testing.T) {
	c := New(DefaultConfig(1, 1))
	if got := c.CopyCost(6000); got != sim.Time(1000) {
		t.Fatalf("CopyCost(6000) = %v, want 1000ns at 6 GB/s", got)
	}
	cfg := DefaultConfig(1, 1)
	cfg.HostCopyGBps = 0
	if got := New(cfg).CopyCost(1 << 20); got != 0 {
		t.Fatalf("zero-rate CopyCost = %v", got)
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig(8, 32)
	if cfg.ProxiesPerDPU <= 0 || cfg.HostCopyGBps <= 0 || cfg.ShmLatency <= 0 {
		t.Fatalf("bad defaults: %+v", cfg)
	}
	if cfg.DPUPort.Overhead <= cfg.HostPort.Overhead {
		t.Fatal("DPU port must have higher per-message overhead than host port")
	}
}

func TestBlueField3ConfigFaster(t *testing.T) {
	bf2 := DefaultConfig(2, 2)
	bf3 := BlueField3Config(2, 2)
	if bf3.DPUPort.Overhead >= bf2.DPUPort.Overhead {
		t.Fatal("BF3 ARM posting must be faster than BF2")
	}
	if bf3.HostPort.GBps <= bf2.HostPort.GBps {
		t.Fatal("NDR must be faster than HDR")
	}
	if bf3.Fabric.LoopbackGBps <= bf2.Fabric.LoopbackGBps {
		t.Fatal("Gen5 loopback must be faster")
	}
}
