// Package cluster assembles the simulated testbed: nodes that each carry a
// host HCA port, a BlueField DPU port, per-process address spaces and verbs
// contexts, plus the shared verbs key registry and GVMI manager.
//
// The default configuration mirrors the paper's platform: dual-socket Xeon
// hosts, one ConnectX-class HCA and one BlueField-2 per node, HDR InfiniBand.
package cluster

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/gvmi"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/verbs"
)

// Config describes one simulated cluster.
type Config struct {
	Nodes         int
	PPN           int // host processes per node
	ProxiesPerDPU int // worker processes on each BlueField

	Fabric   fabric.Config
	HostPort fabric.Params
	DPUPort  fabric.Params
	Verbs    verbs.CostConfig
	GVMI     gvmi.CostConfig

	// NodeProfiles assigns a device profile name per node (len == Nodes)
	// for mixed fleets: each named node's ports come from its profile
	// instead of HostPort/DPUPort, and nodes whose profile has a DSA
	// engine get a third (engine) endpoint. Nil or empty entries keep the
	// homogeneous HostPort/DPUPort values above — the pre-substrate
	// behaviour, bit-exact.
	NodeProfiles []string

	// RichTelemetry opts into the per-endpoint congestion series
	// (fabric "goodput_bytes" and verbs "endpoint_retries" gauges).
	// Off by default: the extra series would change the byte-identical
	// checked-in benchmark snapshots.
	RichTelemetry bool

	// BackedPayload allocates real bytes in every buffer so data integrity
	// can be verified. Figure-scale runs switch it off; virtual-time results
	// are unaffected (costs depend only on sizes).
	BackedPayload bool

	// Shards, when > 1, runs the kernel in lookahead-sharded mode: pending
	// events are split across per-node shards and each window is extracted
	// in parallel, with the conservative lookahead set to the fabric's
	// minimum link latency. Dispatch order is unchanged, so every result is
	// byte-identical to a serial run (guarded by the -shards two-sided
	// tests). 0 or 1 keeps the serial loop. More shards than nodes is
	// clamped to the node count.
	Shards int

	// HostCopyGBps is the single-core memcpy bandwidth used for intra-node
	// (shared-memory) MPI transfers, in bytes/ns.
	HostCopyGBps float64
	// ShmLatency is the intra-node delivery latency for shared-memory
	// messages.
	ShmLatency sim.Time

	// Fault, when non-nil, attaches a deterministic fault injector to the
	// fabric and verbs layers and enables the reliability machinery (retry,
	// timeouts, proxy failover) in the offload framework. Nil keeps every
	// fast path bit-identical to a fault-free build.
	Fault *fault.Config

	// Metrics, when non-nil, records per-layer counters, gauges and
	// histograms across fabric, verbs, regcache, core and mpi. Metrics never
	// consume virtual time; nil keeps every fast path untouched (the fig13
	// guards enforce both properties bit-exactly).
	Metrics *metrics.Registry

	// Spans, when non-nil, records the causal span tree (operation ->
	// proxy/group work -> verbs ops -> fabric flights) for critical-path
	// analysis. Like Metrics, span collection never consumes virtual time;
	// nil keeps every fast path untouched.
	Spans *span.Collector

	// Timeline, when non-nil, samples watched Metrics series into
	// fixed-width virtual-time buckets via the kernel's tick hook. It
	// requires Metrics (there is nothing to sample otherwise) and, like
	// the other observers, never consumes virtual time.
	Timeline *telemetry.Recorder
}

// FromProfile builds the standard testbed around one device profile:
// fabric generation, port parameters and proxy count come from the
// profile; host-side properties (memcpy bandwidth, shm latency, verbs and
// GVMI cost models) are the paper's platform defaults.
func FromProfile(p device.Profile, nodes, ppn int) Config {
	return Config{
		Nodes:         nodes,
		PPN:           ppn,
		ProxiesPerDPU: p.ProxiesPerDPU,
		Fabric:        p.Fabric,
		HostPort:      p.HostPort,
		DPUPort:       p.DPUPort,
		Verbs:         verbs.DefaultCosts(),
		GVMI:          gvmi.DefaultCosts(),
		BackedPayload: true,
		HostCopyGBps:  6.0,
		ShmLatency:    200 * sim.Nanosecond,
	}
}

// ProfileConfig is FromProfile by registry name.
func ProfileConfig(name string, nodes, ppn int) Config {
	return FromProfile(device.MustLookup(name), nodes, ppn)
}

// DefaultConfig returns the standard testbed with the given shape: the
// paper's platform, i.e. the bf2 device profile. Equivalence with the
// pre-substrate hard-coded values is pinned by TestProfileEquivalence.
func DefaultConfig(nodes, ppn int) Config {
	return ProfileConfig(device.BaselineName, nodes, ppn)
}

// BlueField3Config is the future-work platform of Section X: BlueField-3
// SmartNICs (faster ARM cores) on an NDR InfiniBand fabric — the bf3
// device profile.
func BlueField3Config(nodes, ppn int) Config {
	return ProfileConfig("bf3", nodes, ppn)
}

// NP returns the total number of host processes.
func (c Config) NP() int { return c.Nodes * c.PPN }

// Node is one machine: a host port shared by its PPN host processes and a
// DPU port shared by its proxies. Nodes whose device profile carries a
// DSA engine also expose the engine's injection port.
type Node struct {
	ID     int
	HostEP *fabric.Endpoint
	DPUEP  *fabric.Endpoint
	// DSAEP is the hardware DMA/DSA engine port; nil unless the node's
	// profile has one (so default clusters create the exact same
	// endpoint set — and metric series — as before the substrate).
	DSAEP *fabric.Endpoint
	// Profile is the node's resolved device profile.
	Profile device.Profile
}

// Site is the hardware attachment point of one simulated process: its
// address space and verbs context. A process may open extra contexts (e.g.
// one for MPI and one for the offload library) via NewCtx; they share the
// same endpoint and space.
type Site struct {
	Node  *Node
	Space *mem.Space
	Ctx   *verbs.Ctx
	OnDPU bool
}

// NewCtx opens an additional verbs context on the same endpoint and space.
func (s *Site) NewCtx(name string) *verbs.Ctx {
	ep := s.Node.HostEP
	if s.OnDPU {
		ep = s.Node.DPUEP
	}
	return s.Ctx.Registry().NewCtx(name, s.Space, ep)
}

// Cluster is the assembled testbed.
type Cluster struct {
	Cfg  Config
	K    *sim.Kernel
	F    *fabric.Fabric
	Reg  *verbs.Registry
	GVMI *gvmi.Manager

	// Trace, when set (cl.Trace = trace.New(0)), records protocol events
	// from the offload framework — the Figure 1 timeline as data.
	Trace *trace.Log

	// Inj is the fault injector built from Cfg.Fault (nil when faults are
	// off). Injected faults and recoveries are counted in Inj.Stats and
	// recorded in Trace.
	Inj *fault.Injector

	// Met is the metrics registry from Cfg.Metrics (nil when metrics are
	// off); downstream layers (core, mpi) instrument themselves through it.
	Met *metrics.Registry

	// Spans is the span collector from Cfg.Spans (nil when span tracing is
	// off); downstream layers create spans through it and propagate parent
	// IDs through their message/descriptor structs.
	Spans *span.Collector

	Nodes []*Node
}

// New builds a cluster on a fresh kernel.
func New(cfg Config) *Cluster {
	k := sim.NewKernel()
	f := fabric.New(k, cfg.Fabric)
	if n := cfg.Shards; n > 1 {
		// Before anything is scheduled: the serial heap and the shard heaps
		// never coexist. The fabric's minimum link latency is the widest
		// window that is still conservative — no cross-node delivery can
		// land sooner.
		if n > cfg.Nodes {
			n = cfg.Nodes
		}
		k.ConfigureShards(n, f.MinLatency())
	}
	reg := verbs.NewRegistry(f, cfg.Verbs)
	c := &Cluster{
		Cfg:  cfg,
		K:    k,
		F:    f,
		Reg:  reg,
		GVMI: gvmi.NewManager(reg, cfg.GVMI),
	}
	if cfg.Fault != nil {
		inj := fault.NewInjector(cfg.Fault)
		inj.TraceFn = func() *trace.Log { return c.Trace }
		f.SetInjector(inj)
		reg.SetInjector(inj)
		c.Inj = inj
	}
	if cfg.Metrics.Enabled() {
		// Attach before endpoints are created: endpoints bind their counter
		// handles in NewEndpoint.
		f.SetMetrics(cfg.Metrics)
		reg.SetMetrics(cfg.Metrics)
		c.Met = cfg.Metrics
		if cfg.RichTelemetry {
			f.SetRichTelemetry(true)
			reg.SetRichTelemetry(true)
		}
	}
	if cfg.Spans.Enabled() {
		cfg.Spans.AttachClock(k)
		f.SetSpans(cfg.Spans)
		reg.SetSpans(cfg.Spans)
		c.Spans = cfg.Spans
	}
	if cfg.Timeline.Enabled() {
		cfg.Timeline.Start(k, cfg.Metrics)
	}
	for i := 0; i < cfg.Nodes; i++ {
		p := device.Generic(cfg.HostPort, cfg.DPUPort)
		if i < len(cfg.NodeProfiles) && cfg.NodeProfiles[i] != "" {
			p = device.MustLookup(cfg.NodeProfiles[i])
		}
		n := &Node{
			ID:      i,
			HostEP:  f.NewEndpoint(fmt.Sprintf("n%d.host", i), i, p.HostPort),
			DPUEP:   f.NewEndpoint(fmt.Sprintf("n%d.dpu", i), i, p.DPUPort),
			Profile: p,
		}
		if p.HasDSA {
			n.DSAEP = f.NewEndpoint(fmt.Sprintf("n%d.dsa", i), i, p.DSAPort)
		}
		c.Nodes = append(c.Nodes, n)
	}
	if cfg.Timeline.Enabled() {
		// Nodes exist now, so the recorder can tag per-node series with the
		// owning device profile; a fleet without named profiles yields an
		// empty map and exports stay byte-identical.
		cfg.Timeline.SetDeviceLabels(c.DeviceLabels())
	}
	return c
}

// ProfileOf returns the resolved device profile of one node. Nodes
// without an explicit NodeProfiles entry report the generic full-caps
// profile built from the homogeneous port parameters.
func (c *Cluster) ProfileOf(node int) device.Profile { return c.Nodes[node].Profile }

// FleetProfile returns the fleet-consistent capability merge of every
// node's profile — the view fleet-global (collective) policy rules must
// consume so all ranks decide identically.
func (c *Cluster) FleetProfile() device.Profile {
	ps := make([]device.Profile, len(c.Nodes))
	for i, n := range c.Nodes {
		ps[i] = n.Profile
	}
	return device.Merge(ps)
}

// DeviceLabels maps per-node metric/telemetry entity names ("n3.host",
// "n3.dpu", "n3.dsa", "proxy5") to the owning node's device profile name.
// Empty when no node carries a named profile, so exports predating the
// device dimension stay byte-identical.
func (c *Cluster) DeviceLabels() map[string]string {
	out := map[string]string{}
	for _, n := range c.Nodes {
		if n.Profile.Name == "" {
			continue
		}
		out[fmt.Sprintf("n%d.host", n.ID)] = n.Profile.Name
		out[fmt.Sprintf("n%d.dpu", n.ID)] = n.Profile.Name
		if n.DSAEP != nil {
			out[fmt.Sprintf("n%d.dsa", n.ID)] = n.Profile.Name
		}
		for l := 0; l < c.Cfg.ProxiesPerDPU; l++ {
			out[fmt.Sprintf("proxy%d", n.ID*c.Cfg.ProxiesPerDPU+l)] = n.Profile.Name
		}
	}
	return out
}

// NewHostSite creates the attachment point for a host process on a node.
func (c *Cluster) NewHostSite(node int, name string) *Site {
	n := c.Nodes[node]
	sp := mem.NewSpace(name)
	return &Site{Node: n, Space: sp, Ctx: c.Reg.NewCtx(name, sp, n.HostEP)}
}

// NewDPUSite creates the attachment point for a proxy process on a node's
// BlueField.
func (c *Cluster) NewDPUSite(node int, name string) *Site {
	n := c.Nodes[node]
	sp := mem.NewSpace(name)
	return &Site{Node: n, Space: sp, Ctx: c.Reg.NewCtx(name, sp, n.DPUEP), OnDPU: true}
}

// NodeOfRank maps a host rank to its node under block distribution
// (ranks 0..PPN-1 on node 0, and so on), matching typical -ppn launches.
func (c *Cluster) NodeOfRank(rank int) int { return rank / c.Cfg.PPN }

// LocalRank returns the node-local index of a host rank.
func (c *Cluster) LocalRank(rank int) int { return rank % c.Cfg.PPN }

// ProxyOfRank maps a host rank to the node-local proxy index that serves it:
// proxy_local_rank = host_source_rank % num_proxies_per_dpu (Section VII-A).
func (c *Cluster) ProxyOfRank(rank int) int {
	return c.LocalRank(rank) % c.Cfg.ProxiesPerDPU
}

// SameNode reports whether two host ranks share a node.
func (c *Cluster) SameNode(a, b int) bool { return c.NodeOfRank(a) == c.NodeOfRank(b) }

// CopyCost returns the CPU time for one core to copy n bytes.
func (c *Cluster) CopyCost(n int) sim.Time {
	if c.Cfg.HostCopyGBps <= 0 {
		return 0
	}
	return sim.Time(float64(n) / c.Cfg.HostCopyGBps)
}
