// Package shmem demonstrates the framework's programming-model agnosticism
// (Section I: "designed to be programming model agnostic") by layering an
// OpenSHMEM-flavoured one-sided API — Put / Get / Quiet over a symmetric
// heap — on the same offload machinery that backs the MPI-style
// collectives.
//
// Each PE exposes its symmetric heap once as a core.Window (IB rkey +
// cross-GVMI mkey registered to its proxy); windows are exchanged at
// startup. A Put or Get is then a single control message to one DPU proxy,
// which moves the data between host memories directly — neither the target
// PE's CPU nor any further host involvement is needed, and transfers
// progress while the initiator computes.
package shmem

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

// World is a SHMEM job: one PE per host process with a symmetric heap.
type World struct {
	fw       *core.Framework
	heapSize int
	pes      []*PE
	windows  []core.Window // published at startup, indexed by PE

	ready     int // PEs that have completed Bind
	readyCond sim.Cond
}

// PE is one processing element. Methods must be called from its process,
// after Bind.
type PE struct {
	w        *World
	id       int
	host     *core.Host
	site     *cluster.Site
	heap     *mem.Buffer
	heapUsed int

	pending []*core.OffloadRequest // outstanding puts/gets, drained by Quiet
}

// New creates a SHMEM world over an offload framework. heapSize is the
// symmetric-heap capacity per PE.
func New(fw *core.Framework, sites []*cluster.Site, heapSize int) *World {
	w := &World{fw: fw, heapSize: heapSize, windows: make([]core.Window, len(sites))}
	for i, site := range sites {
		w.pes = append(w.pes, &PE{
			w: w, id: i, host: fw.Host(i), site: site,
			heap: site.Space.Alloc(heapSize, fw.Cluster().Cfg.BackedPayload),
		})
	}
	return w
}

// PE returns processing element i.
func (w *World) PE(i int) *PE { return w.pes[i] }

// NPEs returns the number of processing elements (shmem_n_pes).
func (w *World) NPEs() int { return len(w.pes) }

// Bind attaches the PE to its simulated process and exposes its symmetric
// heap (shmem_init). Call once per PE before any communication; the window
// exchange itself is modelled as part of initialization.
func (pe *PE) Bind(p *sim.Proc) {
	pe.host.Bind(p)
	pe.w.windows[pe.id] = pe.host.ExposeWindow(pe.heap.Addr(), pe.heap.Size())
	// The window exchange is collective: no PE may communicate before all
	// windows are published.
	pe.w.ready++
	pe.w.readyCond.Broadcast()
	for pe.w.ready < len(pe.w.pes) {
		pe.w.readyCond.Wait(p)
	}
}

// ID returns the PE number (shmem_my_pe).
func (pe *PE) ID() int { return pe.id }

// SymAddr is a symmetric-heap offset, valid on every PE.
type SymAddr int

// Malloc carves size bytes from the symmetric heap (shmem_malloc). All PEs
// must allocate in the same order.
func (pe *PE) Malloc(size int) SymAddr {
	if size <= 0 {
		panic("shmem: non-positive allocation")
	}
	aligned := (size + 63) &^ 63
	if pe.heapUsed+aligned > pe.heap.Size() {
		panic(fmt.Sprintf("shmem: symmetric heap exhausted (%d+%d > %d)",
			pe.heapUsed, aligned, pe.heap.Size()))
	}
	off := SymAddr(pe.heapUsed)
	pe.heapUsed += aligned
	return off
}

// Bytes exposes the local backing storage at a symmetric address.
func (pe *PE) Bytes(a SymAddr, n int) []byte {
	return pe.site.Space.ReadAt(pe.heap.Addr()+mem.Addr(a), n)
}

// Put starts a nonblocking put of n bytes from local src to dst on the
// target PE (shmem_put_nbi): one control message to this PE's proxy, which
// writes straight from this PE's heap into the target's.
func (pe *PE) Put(dst SymAddr, src SymAddr, n, target int) {
	req := pe.host.PutOffload(pe.w.windows[pe.id], int(src), pe.w.windows[target], int(dst), n)
	pe.pending = append(pe.pending, req)
}

// Get starts a nonblocking get of n bytes from src on the target PE into
// local dst (shmem_get_nbi): one control message to the *target's* proxy,
// which sources the data via cross-GVMI without running any target code.
func (pe *PE) Get(dst SymAddr, src SymAddr, n, target int) {
	req := pe.host.GetOffload(pe.w.windows[pe.id], int(dst), pe.w.windows[target], int(src), n)
	pe.pending = append(pe.pending, req)
}

// Quiet blocks until all outstanding puts and gets by this PE have
// completed remotely (shmem_quiet).
func (pe *PE) Quiet() {
	if len(pe.pending) == 0 {
		return
	}
	pe.host.WaitAll(pe.pending...)
	pe.pending = pe.pending[:0]
}

// Pending reports the number of outstanding one-sided operations.
func (pe *PE) Pending() int { return len(pe.pending) }

// Compute models local computation; offloaded transfers progress meanwhile.
func (pe *PE) Compute(d sim.Time) { pe.host.Proc().AdvanceBusy(d) }
