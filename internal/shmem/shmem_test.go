package shmem

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
)

// runPEs builds a SHMEM world and runs main on every PE.
func runPEs(t *testing.T, nodes, ppn int, heap int, main func(pe *PE)) *core.Framework {
	t.Helper()
	ccfg := cluster.DefaultConfig(nodes, ppn)
	cl := cluster.New(ccfg)
	sites := make([]*cluster.Site, ccfg.NP())
	for i := range sites {
		sites[i] = cl.NewHostSite(cl.NodeOfRank(i), fmt.Sprintf("pe%d", i))
	}
	fw := core.New(cl, core.DefaultConfig(), sites)
	fw.Start()
	w := New(fw, sites, heap)
	for i := 0; i < w.NPEs(); i++ {
		pe := w.PE(i)
		cl.K.Spawn(fmt.Sprintf("pe%d", i), func(p *sim.Proc) {
			pe.Bind(p)
			main(pe)
		})
	}
	cl.K.Run()
	if len(cl.K.Deadlocked) > 0 {
		t.Fatalf("deadlocked: %d", len(cl.K.Deadlocked))
	}
	return fw
}

func TestPutDeliversBytes(t *testing.T) {
	const n = 8 << 10
	var target *PE
	var dstOff SymAddr
	runPEs(t, 2, 1, 64<<10, func(pe *PE) {
		src := pe.Malloc(n)
		dst := pe.Malloc(n)
		if pe.ID() == 0 {
			d := pe.Bytes(src, n)
			for i := range d {
				d[i] = byte(i * 3)
			}
			pe.Put(dst, src, n, 1)
			pe.Quiet()
		} else {
			target, dstOff = pe, dst
		}
	})
	got := target.Bytes(dstOff, n)
	for i := range got {
		if got[i] != byte(i*3) {
			t.Fatalf("byte %d = %d, want %d", i, got[i], byte(i*3))
		}
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	const n = 4 << 10
	results := make(map[int][]byte)
	runPEs(t, 2, 2, 64<<10, func(pe *PE) {
		src := pe.Malloc(n)
		dst := pe.Malloc(n)
		d := pe.Bytes(src, n)
		for i := range d {
			d[i] = byte(pe.ID()*40 + i)
		}
		// Everyone gets from its right neighbour.
		target := (pe.ID() + 1) % pe.w.NPEs()
		pe.Get(dst, src, n, target)
		pe.Quiet()
		results[pe.ID()] = append([]byte(nil), pe.Bytes(dst, n)...)
	})
	for id, got := range results {
		want := make([]byte, n)
		tgt := (id + 1) % 4
		for i := range want {
			want[i] = byte(tgt*40 + i)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("PE %d got wrong data from %d", id, tgt)
		}
	}
}

func TestGetDoesNotInvolveTargetCPU(t *testing.T) {
	// The target PE computes the whole time; the initiator's Get must still
	// complete (the target's proxy serves it).
	const n = 64 << 10
	var gotAt, computeEnd sim.Time
	runPEs(t, 2, 1, 128<<10, func(pe *PE) {
		src := pe.Malloc(n)
		dst := pe.Malloc(n)
		if pe.ID() == 1 {
			d := pe.Bytes(src, n)
			for i := range d {
				d[i] = 0x7A
			}
			pe.Compute(10 * sim.Millisecond) // never calls the library
			computeEnd = pe.host.Proc().Now()
			return
		}
		pe.Compute(100 * sim.Microsecond) // let PE 1 fill its buffer
		pe.Get(dst, src, n, 1)
		pe.Quiet()
		gotAt = pe.host.Proc().Now()
		if pe.Bytes(dst, n)[100] != 0x7A {
			t.Error("get payload wrong")
		}
	})
	if gotAt >= computeEnd {
		t.Fatalf("Get completed at %v, only after the target stopped computing (%v)", gotAt, computeEnd)
	}
}

func TestPutOverlapsCompute(t *testing.T) {
	const n = 1 << 20
	var waited sim.Time
	runPEs(t, 2, 1, 2<<20, func(pe *PE) {
		a := pe.Malloc(n)
		if pe.ID() == 0 {
			pe.Put(a, a, n, 1)
			pe.Compute(5 * sim.Millisecond)
			t0 := pe.host.Proc().Now()
			pe.Quiet()
			waited = pe.host.Proc().Now() - t0
		}
	})
	if waited > 50*sim.Microsecond {
		t.Fatalf("Quiet blocked %v; put should have completed during compute", waited)
	}
}

func TestMallocSymmetricAndBounded(t *testing.T) {
	runPEs(t, 1, 2, 4096, func(pe *PE) {
		a := pe.Malloc(100)
		b := pe.Malloc(100)
		if a != 0 || b != 128 { // 64-byte aligned
			t.Errorf("allocation offsets %d, %d", a, b)
		}
		defer func() {
			if recover() == nil {
				t.Error("expected heap exhaustion panic")
			}
		}()
		pe.Malloc(1 << 20)
	})
}

func TestWindowRangeChecked(t *testing.T) {
	runPEs(t, 2, 1, 4096, func(pe *PE) {
		if pe.ID() != 0 {
			return
		}
		a := pe.Malloc(128)
		defer func() {
			if recover() == nil {
				t.Error("expected out-of-window panic")
			}
		}()
		pe.Put(a, a, 1<<20, 1)
	})
}

func TestOneSidedUsesSingleControlMessage(t *testing.T) {
	const n = 4 << 10
	fw := runPEs(t, 2, 1, 64<<10, func(pe *PE) {
		a := pe.Malloc(n)
		if pe.ID() == 0 {
			pe.Put(a, a, n, 1)
			pe.Quiet()
		}
	})
	s := fw.Stats()
	// One put = one control message to a proxy (plus zero RTR) and one
	// RDMA write; FINs flow proxy->host and are not proxy-handled.
	if s.CtrlMsgs != 1 || s.RDMAWrites != 1 {
		t.Fatalf("ctrl=%d writes=%d, want 1/1 (one-sided must be a single message)", s.CtrlMsgs, s.RDMAWrites)
	}
}
