// Package figures regenerates every table and figure of the paper's
// evaluation (Section VIII) plus the motivation microbenchmarks (Section
// II). Each Fig* function runs the corresponding experiment on the
// simulated testbed and returns printable tables; cmd/offloadbench exposes
// them as subcommands and bench_test.go as testing.B benchmarks.
//
// Scale note: the paper's runs use 32 processes per node and 100
// iterations. The simulator is deterministic, so defaults use fewer
// iterations, and the PPN is adjustable; pass the paper's values for
// full-scale runs (see EXPERIMENTS.md for the shipped results).
package figures

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/fft"
	"repro/internal/hpl"
	"repro/internal/sim"
	"repro/internal/stencil"
)

// Schemes compared in the collective/application experiments.
var nbcSchemes = []string{baseline.NameBluesMPI, baseline.NameProposed, baseline.NameIntelMPI}

// Fig2 reproduces Figure 2: RDMA-write latency, host-driven vs DPU-driven.
func Fig2(iters int) *bench.Table {
	t := &bench.Table{
		Title:   "Fig 2: RDMA-Write Latency — Host-to-Host vs Host-to-DPU (us)",
		Headers: []string{"Size", "Host-to-Host", "Host-to-DPU", "Ratio"},
	}
	for _, row := range bench.MeasureRDMALatency(bench.Pow2Sizes(2, 2048), iters) {
		t.AddRow(bench.SizeLabel(row.Size),
			bench.F2(row.HostHost.Micros()),
			bench.F2(row.HostDPU.Micros()),
			bench.F2(float64(row.HostDPU)/float64(row.HostHost)))
	}
	t.Notes = append(t.Notes, "paper: DPU latency close to host latency (slower ARM posting amortized by wire time)")
	return t
}

// Fig3 reproduces Figure 3: RDMA-write bandwidth normalized to host-to-host.
func Fig3(window, iters int) *bench.Table {
	t := &bench.Table{
		Title:   "Fig 3: RDMA-Write Bandwidth — normalized to Host-to-Host (higher is better)",
		Headers: []string{"Size", "Host GB/s", "DPU GB/s", "Normalized"},
	}
	for _, row := range bench.MeasureRDMABandwidth(bench.Pow2Sizes(2, 4<<20), window, iters) {
		t.AddRow(bench.SizeLabel(row.Size),
			bench.F2(row.HostHost), bench.F2(row.HostDPU), bench.F2(row.Normalized))
	}
	t.Notes = append(t.Notes, "paper: ~0.5 for small messages (ARM injection rate), converging at large messages")
	return t
}

// Fig4 reproduces Figure 4: nonblocking pingpong latency, host MPI vs a
// staging-based offload design.
func Fig4(warmup, iters int) *bench.Table {
	t := &bench.Table{
		Title:   "Fig 4: Nonblocking Pingpong Latency — Host MPI vs Staging offload (us)",
		Headers: []string{"Size", "Host", "Staged", "Degradation"},
	}
	staging := baseline.StagingNoWarmupConfig()
	sizes := bench.Pow2Sizes(4<<10, 2<<20)
	host := make([]sim.Time, len(sizes))
	staged := make([]sim.Time, len(sizes))
	bench.Sweep(2*len(sizes), func(j int, env bench.SweepEnv) {
		i := j / 2
		if j%2 == 0 {
			host[i] = bench.MeasurePingpongNB(env.Attach(bench.Options{
				Nodes: 2, PPN: 1, Scheme: baseline.NameIntelMPI,
			}), sizes[i], warmup, iters)
		} else {
			staged[i] = bench.MeasurePingpongNB(env.Attach(bench.Options{
				Nodes: 2, PPN: 1, Scheme: baseline.NameBluesMPI, Core: &staging,
			}), sizes[i], warmup, iters)
		}
	})
	for i, size := range sizes {
		t.AddRow(bench.SizeLabel(size),
			bench.F2(host[i].Micros()), bench.F2(staged[i].Micros()),
			bench.F2(float64(staged[i])/float64(host[i])))
	}
	t.Notes = append(t.Notes, "paper: staging degrades latency vs direct host-host (extra hop through DPU DRAM)")
	return t
}

// Fig5 reproduces Figure 5: the two cross-GVMI registration costs.
func Fig5() *bench.Table {
	t := &bench.Table{
		Title:   "Fig 5: Memory registration overheads for cross-GVMI (us)",
		Headers: []string{"Size", "Host GVMI reg", "DPU cross-reg"},
	}
	for _, row := range bench.MeasureRegistration(bench.Pow2Sizes(4<<10, 4<<20)) {
		t.AddRow(bench.SizeLabel(row.Size),
			bench.F2(row.HostReg.Micros()), bench.F2(row.CrossReg.Micros()))
	}
	t.Notes = append(t.Notes, "both grow with size; cross-registration costs more (ARM cores, mkey validation)")
	return t
}

// Fig11And12 reproduces Figures 11 and 12: the 3D-stencil overall time
// (normalized to IntelMPI) and overlap percentage, Proposed vs IntelMPI.
func Fig11And12(nodes, ppn, warmup, iters int, problems []int) (*bench.Table, *bench.Table) {
	t11 := &bench.Table{
		Title:   fmt.Sprintf("Fig 11: 3DStencil normalized overall time, %d nodes x %d PPN (lower is better)", nodes, ppn),
		Headers: []string{"Problem", "Proposed", "IntelMPI", "Proposed overall", "IntelMPI overall"},
	}
	t12 := &bench.Table{
		Title:   fmt.Sprintf("Fig 12: 3DStencil overlap %%, %d nodes x %d PPN", nodes, ppn),
		Headers: []string{"Problem", "Proposed", "IntelMPI"},
	}
	hostR := make([]stencil.Result, len(problems))
	propR := make([]stencil.Result, len(problems))
	bench.Sweep(2*len(problems), func(j int, env bench.SweepEnv) {
		i := j / 2
		if j%2 == 0 {
			hostR[i] = stencil.Run(env.Attach(bench.Options{Nodes: nodes, PPN: ppn, Scheme: baseline.NameIntelMPI}), problems[i], warmup, iters)
		} else {
			propR[i] = stencil.Run(env.Attach(bench.Options{Nodes: nodes, PPN: ppn, Scheme: baseline.NameProposed}), problems[i], warmup, iters)
		}
	})
	for i, n := range problems {
		host, prop := hostR[i], propR[i]
		label := fmt.Sprintf("%d^3", n)
		t11.AddRow(label,
			bench.F2(float64(prop.Overall)/float64(host.Overall)),
			"1.00",
			prop.Overall.String(), host.Overall.String())
		t12.AddRow(label, bench.Pct(prop.Overlap), bench.Pct(host.Overlap))
	}
	t11.Notes = append(t11.Notes, "paper: >20% benefit for Proposed")
	t12.Notes = append(t12.Notes, "paper: Proposed ~78% (intra-node transfers stay on the CPU); IntelMPI drops at the largest size")
	return t11, t12
}

// Fig13And14 reproduces Figures 13(a-c) and 14: Ialltoall overall time and
// overlap for BluesMPI / Proposed / IntelMPI across node counts and message
// sizes.
func Fig13And14(nodesList []int, ppn int, sizes []int, warmup, iters int) ([]*bench.Table, []*bench.Table) {
	// One sweep job per (nodes, size, scheme) point, indexed in the exact
	// nesting order of the serial loops so the shared-registry metrics state
	// (and therefore -metrics output) is identical at any parallelism.
	ns, nsch := len(sizes), len(nbcSchemes)
	res := make([]bench.NBCResult, len(nodesList)*ns*nsch)
	bench.Sweep(len(res), func(j int, env bench.SweepEnv) {
		nodes := nodesList[j/(ns*nsch)]
		size := sizes[j/nsch%ns]
		scheme := nbcSchemes[j%nsch]
		res[j] = bench.MeasureIalltoall(env.Attach(bench.Options{
			Nodes: nodes, PPN: ppn, Scheme: scheme,
		}), size, warmup, iters)
	})

	var t13s, t14s []*bench.Table
	for ni, nodes := range nodesList {
		t13 := &bench.Table{
			Title:   fmt.Sprintf("Fig 13: Ialltoall overall time (comm+compute), %d nodes x %d PPN (us)", nodes, ppn),
			Headers: []string{"Size", "BluesMPI", "Proposed", "IntelMPI", "vs BluesMPI", "vs IntelMPI"},
		}
		t14 := &bench.Table{
			Title:   fmt.Sprintf("Fig 14: Ialltoall overlap %%, %d nodes x %d PPN", nodes, ppn),
			Headers: []string{"Size", "BluesMPI", "Proposed", "IntelMPI"},
		}
		for si, size := range sizes {
			row := map[string]bench.NBCResult{}
			for ki, scheme := range nbcSchemes {
				row[scheme] = res[(ni*ns+si)*nsch+ki]
			}
			b, p, i := row[baseline.NameBluesMPI], row[baseline.NameProposed], row[baseline.NameIntelMPI]
			t13.AddRow(bench.SizeLabel(size),
				bench.F2(b.Overall.Micros()), bench.F2(p.Overall.Micros()), bench.F2(i.Overall.Micros()),
				bench.Pct(100*(1-float64(p.Overall)/float64(b.Overall))),
				bench.Pct(100*(1-float64(p.Overall)/float64(i.Overall))))
			t14.AddRow(bench.SizeLabel(size),
				bench.Pct(b.Overlap), bench.Pct(p.Overlap), bench.Pct(i.Overlap))
		}
		t13.Notes = append(t13.Notes, "paper: Proposed up to 25/30/47% better than BluesMPI and 35/40/58% than IntelMPI at 4/8/16 nodes")
		t14.Notes = append(t14.Notes, "paper: BluesMPI and Proposed both near 100% overlap; IntelMPI lower")
		t13s = append(t13s, t13)
		t14s = append(t14s, t14)
	}
	return t13s, t14s
}

// Fig15 reproduces Figure 15: the scatter-destination exchange implemented
// with Simple (basic) primitives versus Group primitives, on the Proposed
// framework. Disabling the group cache isolates the metadata-exchange
// saving.
func Fig15(nodes, ppn int, sizes []int, warmup, iters int, groupCache bool) *bench.Table {
	title := fmt.Sprintf("Fig 15: Scatter-destination pattern — Simple vs Group primitives, %d nodes x %d PPN (us)", nodes, ppn)
	if !groupCache {
		title += " [group cache OFF]"
	}
	t := &bench.Table{
		Title:   title,
		Headers: []string{"Size", "Simple", "Group", "Improvement"},
	}
	cfg := baseline.ProposedConfig()
	cfg.GroupCache = groupCache
	res := make([]bench.NBCResult, 2*len(sizes))
	bench.Sweep(len(res), func(j int, env bench.SweepEnv) {
		opt := env.Attach(bench.Options{Nodes: nodes, PPN: ppn, Scheme: baseline.NameProposed, Core: &cfg})
		res[j] = bench.MeasureScatterDest(opt, sizes[j/2], warmup, iters, j%2 == 0)
	})
	for i, size := range sizes {
		simple, group := res[2*i], res[2*i+1]
		t.AddRow(bench.SizeLabel(size),
			bench.F2(simple.Overall.Micros()), bench.F2(group.Overall.Micros()),
			bench.Pct(100*(1-float64(group.Overall)/float64(simple.Overall))))
	}
	t.Notes = append(t.Notes, "paper: Group primitives up to 40% better (host-side gathering + one-time metadata exchange)")
	return t
}

// Fig16 reproduces Figures 16(a) and 16(b): P3DFFT runtimes normalized to
// IntelMPI for a set of Z extents at fixed X=Y.
func Fig16(nodes, ppn, xy int, zs []int, iters int) *bench.Table {
	// Application-level runs use no warm-up iterations: the paper traces
	// BluesMPI's app-level loss to exactly this (Section VIII-D).
	const warmup = 0
	t := &bench.Table{
		Title:   fmt.Sprintf("Fig 16: P3DFFT normalized runtime, %d nodes x %d PPN, X=Y=%d (lower is better)", nodes, ppn, xy),
		Headers: []string{"Z", "BluesMPI", "Proposed", "IntelMPI", "Proposed total"},
	}
	nsch := len(nbcSchemes)
	res := make([]fft.BenchResult, len(zs)*nsch)
	bench.Sweep(len(res), func(j int, env bench.SweepEnv) {
		res[j] = fft.RunBench(env.Attach(bench.Options{
			Nodes: nodes, PPN: ppn, Scheme: nbcSchemes[j%nsch],
		}), xy, xy, zs[j/nsch], warmup, iters)
	})
	for zi, z := range zs {
		row := map[string]fft.BenchResult{}
		for ki, scheme := range nbcSchemes {
			row[scheme] = res[zi*nsch+ki]
		}
		host := float64(row[baseline.NameIntelMPI].Total)
		t.AddRow(fmt.Sprint(z),
			bench.F2(float64(row[baseline.NameBluesMPI].Total)/host),
			bench.F2(float64(row[baseline.NameProposed].Total)/host),
			"1.00",
			row[baseline.NameProposed].Total.String())
	}
	t.Notes = append(t.Notes,
		"paper 16(a): Proposed up to 16% better than IntelMPI, 55% than BluesMPI (8 nodes)",
		"paper 16(b): up to 20% / 60% (16 nodes); BluesMPI suffers without warm-up iterations")
	return t
}

// Fig16C reproduces Figure 16(c): the single-phase profile (compute vs time
// in MPI) of the forward transform for problem P1.
func Fig16C(nodes, ppn, xy, z, iters int) *bench.Table {
	const warmup = 0 // application level: no warm-up iterations
	t := &bench.Table{
		Title:   fmt.Sprintf("Fig 16(c): P3DFFT single-phase profile, %d nodes x %d PPN, %dx%dx%d (ms)", nodes, ppn, xy, xy, z),
		Headers: []string{"Library", "Compute", "MPI time", "Total"},
	}
	schemes := []string{baseline.NameIntelMPI, baseline.NameBluesMPI, baseline.NameProposed}
	res := make([]fft.BenchResult, len(schemes))
	bench.Sweep(len(schemes), func(j int, env bench.SweepEnv) {
		res[j] = fft.RunBench(env.Attach(bench.Options{Nodes: nodes, PPN: ppn, Scheme: schemes[j]}), xy, xy, z, warmup, iters)
	})
	for i, scheme := range schemes {
		t.AddRow(scheme,
			bench.F2(res[i].Compute.Millis()), bench.F2(res[i].MPITime.Millis()), bench.F2(res[i].Total.Millis()))
	}
	t.Notes = append(t.Notes, "paper: compute identical across libraries; BluesMPI spends the most time in MPI_Wait (no warm-up at app level)")
	return t
}

// HPLVariant pairs a display name with scheme and broadcast variant.
type HPLVariant struct {
	Label   string
	Scheme  string
	Variant hpl.Variant
}

// HPLVariants is the Figure 17 comparison set.
var HPLVariants = []HPLVariant{
	{"IntelMPI-1ring", baseline.NameIntelMPI, hpl.Ring1},
	{"IntelMPI-Ibcast", baseline.NameIntelMPI, hpl.HostIbcast},
	{"BluesMPI", baseline.NameBluesMPI, hpl.Offload},
	{"Proposed", baseline.NameProposed, hpl.Offload},
}

// Fig17 reproduces Figure 17: HPL total runtime for problem sizes occupying
// the given percentages of memGB per node, normalized to IntelMPI-1ring.
func Fig17(nodes, ppn, memGB, nb int, fracs []int) *bench.Table {
	t := &bench.Table{
		Title: fmt.Sprintf("Fig 17: HPL normalized runtime, %d nodes x %d PPN, %d GB/node (lower is better)",
			nodes, ppn, memGB),
		Headers: []string{"Mem%", "N", "IntelMPI-1ring", "IntelMPI-Ibcast", "BluesMPI", "Proposed"},
	}
	nv := len(HPLVariants)
	res := make([]hpl.Result, len(fracs)*nv)
	bench.Sweep(len(res), func(j int, env bench.SweepEnv) {
		v := HPLVariants[j%nv]
		par := hpl.DefaultParams(HPLSizeFor(nodes, memGB, fracs[j/nv], nb), nb, v.Variant)
		res[j] = hpl.Run(env.Attach(bench.Options{Nodes: nodes, PPN: ppn, Scheme: v.Scheme}), par)
	})
	for fi, frac := range fracs {
		n := HPLSizeFor(nodes, memGB, frac, nb)
		totals := map[string]sim.Time{}
		for vi, v := range HPLVariants {
			totals[v.Label] = res[fi*nv+vi].Total
		}
		base := float64(totals["IntelMPI-1ring"])
		t.AddRow(fmt.Sprintf("%d%%", frac), fmt.Sprint(n),
			"1.00",
			bench.F2(float64(totals["IntelMPI-Ibcast"])/base),
			bench.F2(float64(totals["BluesMPI"])/base),
			bench.F2(float64(totals["Proposed"])/base))
	}
	t.Notes = append(t.Notes,
		"paper: Proposed ~15-18% better at 5-10% memory, >=8.5% at 50-75%; 1ring ~ BluesMPI",
		"here: the 1D panel ring spans all np ranks (DESIGN.md), so small-fraction broadcasts",
		"are wire-bound and near-tied; the proposed win appears at 25-75% where updates race the ring")
	return t
}

// ChaosRates is the default fault-rate sweep for the chaos experiment.
var ChaosRates = []float64{0, 1e-4, 1e-3, 1e-2}

// FigChaos runs the reliability sweep: the Figure 13 Ialltoall overlap
// measurement repeated under deterministic fault injection at increasing
// rates, with every payload verified end to end. The rate-0 row attaches a
// silent injector and reproduces the fault-free Figure 13 timings exactly
// (the rate-zero fast paths draw no randomness and schedule the same
// events); nonzero rows show the retry/redelivery cost.
func FigChaos(nodes, ppn int, seed int64, rates []float64, msgSize, warmup, iters int) *bench.Table {
	opt := bench.Options{Nodes: nodes, PPN: ppn, Scheme: baseline.NameProposed}
	results := bench.ChaosSweep(opt, seed, rates, msgSize, warmup, iters)
	t := bench.ChaosTable(results)
	t.Title = fmt.Sprintf("Chaos: Ialltoall (Proposed) under fault injection, %d nodes x %d PPN, seed %d",
		nodes, ppn, seed)
	return t
}

// HPLSizeFor converts a memory fraction into a matrix order, rounded to a
// multiple of nb (the HPL convention: N = sqrt(frac * total_mem / 8)).
func HPLSizeFor(nodes, memGB, fracPct, nb int) int {
	totalBytes := float64(nodes) * float64(memGB) * 1e9 * float64(fracPct) / 100
	n := int(math.Sqrt(totalBytes / 8))
	n -= n % nb
	if n < nb*2 {
		n = nb * 2
	}
	return n
}
