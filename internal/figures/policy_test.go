package figures

import (
	"bytes"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bench"
)

func withParallelism(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := bench.Parallelism
	bench.Parallelism = n
	defer func() { bench.Parallelism = prev }()
	fn()
}

// The fixed policy bundles must reproduce the pre-refactor scheme presets
// bit-exactly: same NBCResult, field for field, in virtual time.
func TestFixedPoliciesReproduceSchemePresets(t *testing.T) {
	staging := baseline.StagingNoWarmupConfig()
	cases := []struct {
		policy string
		scheme bench.Options
	}{
		{"gvmi", bench.Options{Scheme: baseline.NameProposed}},
		{"bluesmpi", bench.Options{Scheme: baseline.NameBluesMPI}},
		{"hostdirect", bench.Options{Scheme: baseline.NameIntelMPI}},
		{"staged", bench.Options{Scheme: baseline.NameProposed, Core: &staging}},
	}
	for _, c := range cases {
		pre := c.scheme
		pre.Nodes, pre.PPN = 2, 2
		post := bench.Options{Nodes: 2, PPN: 2, Policy: c.policy}
		a := bench.MeasureIalltoall(pre, 32<<10, 1, 2)
		b := bench.MeasureIalltoall(post, 32<<10, 1, 2)
		a.Scheme, b.Scheme = "", "" // backend label, not a measurement
		if a != b {
			t.Errorf("policy %q diverges from its scheme preset:\npreset: %+v\npolicy: %+v", c.policy, a, b)
		}
	}
}

// The acceptance bar of the policy ablation: at every swept size the
// adaptive policy matches or beats the best fixed datapath on overall
// (overlapped) time — it may tie (it picks one of the fixed paths), it
// must never lose. The feedback arm carries the bar it can actually
// promise: it probes, freezes on the cheapest *observed comm cost*, and
// in a static single-tenant world never drifts — so its steady-state pure
// latency must tie the best fixed path (2% tolerance for cache state the
// probe epoch leaves behind). It makes no overlap promise: issue-to-wait
// cost cannot see how much compute hides behind a path. Warmup is 4 so
// all three feedback probes plus the freeze land before the measured
// iterations.
func TestAdaptiveNeverLosesToFixedPaths(t *testing.T) {
	fixed := []string{"gvmi", "staged", "bluesmpi", "hostdirect"}
	learned := []string{"adaptive", "feedback"}
	sizes := []int{8 << 10, 32 << 10, 128 << 10}
	withParallelism(t, 4, func() {
		arms := append(append([]string{}, learned...), fixed...)
		res := make([]bench.NBCResult, len(sizes)*len(arms))
		bench.Sweep(len(res), func(j int, env bench.SweepEnv) {
			size := sizes[j/len(arms)]
			pol := arms[j%len(arms)]
			res[j] = bench.MeasureIalltoall(env.Attach(bench.Options{
				Nodes: 4, PPN: 8, Policy: pol,
			}), size, 4, 1)
		})
		for i, size := range sizes {
			adaptive := res[i*len(arms)].Overall
			feedback := res[i*len(arms)+1].PureComm
			for f := len(learned); f < len(arms); f++ {
				if other := res[i*len(arms)+f].Overall; adaptive > other {
					t.Errorf("size %d: adaptive %v loses to %s %v",
						size, adaptive, arms[f], other)
				}
				if pure := res[i*len(arms)+f].PureComm; feedback*100 > pure*102 {
					t.Errorf("size %d: feedback pure %v loses to %s pure %v",
						size, feedback, arms[f], pure)
				}
			}
		}
	})
}

// The policy ablation table must render byte-identically at any sweep
// worker count (the determinism contract every figure sweep carries).
func TestPolicyAblationDeterministicAcrossParallelism(t *testing.T) {
	render := func(workers int) string {
		var buf bytes.Buffer
		withParallelism(t, workers, func() {
			PolicyAblation(2, 2, []int{8 << 10, 32 << 10}, 1, 1, "").Fprint(&buf)
		})
		return buf.String()
	}
	serial := render(1)
	parallel := render(4)
	if serial != parallel {
		t.Fatalf("policy ablation diverges between worker counts:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
	if serial == "" {
		t.Fatal("empty rendering")
	}
}
