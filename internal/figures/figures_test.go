package figures

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bench"
)

func TestHPLSizeFor(t *testing.T) {
	// 16 nodes x 256 GB at 75%: N = sqrt(0.75*16*256e9/8) ~ 619k.
	n := HPLSizeFor(16, 256, 75, 256)
	if n%256 != 0 {
		t.Fatalf("N=%d not a multiple of NB", n)
	}
	if n < 600000 || n > 640000 {
		t.Fatalf("N=%d outside the expected range for the paper's 75%% point", n)
	}
	// Tiny fractions clamp to a workable minimum.
	if n := HPLSizeFor(1, 1, 1, 256); n < 512 {
		t.Fatalf("clamped N=%d too small", n)
	}
}

func TestFig2ShapeMatchesPaper(t *testing.T) {
	tab := Fig2(5)
	if len(tab.Rows) == 0 {
		t.Fatal("empty table")
	}
	// Latency ratio close to 1 across all sizes (the Figure 2 claim).
	for _, row := range tab.Rows {
		ratio := row[3]
		if !(strings.HasPrefix(ratio, "1.0") || strings.HasPrefix(ratio, "1.1") || strings.HasPrefix(ratio, "1.2")) {
			t.Fatalf("size %s: DPU/host latency ratio %s not close to 1", row[0], ratio)
		}
	}
}

func TestFig3ShapeMatchesPaper(t *testing.T) {
	rows := bench.MeasureRDMABandwidth([]int{4096, 4 << 20}, 64, 2)
	small, large := rows[0].Normalized, rows[1].Normalized
	if small > 0.75 {
		t.Fatalf("small-message normalized bandwidth %.2f, want ~0.5", small)
	}
	if large < 0.9 {
		t.Fatalf("large-message normalized bandwidth %.2f, want ~1", large)
	}
}

func TestFig4StagingDegrades(t *testing.T) {
	staging := baseline.StagingNoWarmupConfig()
	host := bench.MeasurePingpongNB(bench.Options{Nodes: 2, PPN: 1, Scheme: baseline.NameIntelMPI}, 256<<10, 1, 3)
	staged := bench.MeasurePingpongNB(bench.Options{Nodes: 2, PPN: 1, Scheme: baseline.NameBluesMPI, Core: &staging}, 256<<10, 1, 3)
	if ratio := float64(staged) / float64(host); ratio < 1.3 {
		t.Fatalf("staging degradation %.2f, want > 1.3 (Figure 4)", ratio)
	}
}

func TestFig5CrossRegCostsMore(t *testing.T) {
	tab := Fig5()
	for _, row := range tab.Rows {
		if row[1] >= row[2] && len(row[1]) >= len(row[2]) {
			t.Fatalf("size %s: host reg %s not cheaper than cross reg %s", row[0], row[1], row[2])
		}
	}
}

// Determinism: identical options must produce byte-identical results across
// independent simulations.
func TestMeasurementsDeterministic(t *testing.T) {
	opt := bench.Options{Nodes: 2, PPN: 4, Scheme: baseline.NameProposed}
	a := bench.MeasureIalltoall(opt, 32<<10, 1, 2)
	b := bench.MeasureIalltoall(opt, 32<<10, 1, 2)
	if a != b {
		t.Fatalf("nondeterministic results:\n%+v\n%+v", a, b)
	}
}

func TestAblationsProduceTables(t *testing.T) {
	tables := Ablations(2, 1, 1)
	if len(tables) != 4 {
		t.Fatalf("got %d ablation tables, want 4", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Fatalf("ablation %q has no rows", tab.Title)
		}
	}
}

func TestFig13ProposedWinsAtScaleSizes(t *testing.T) {
	t13s, t14s := Fig13And14([]int{2}, 4, []int{128 << 10}, 4, 2)
	if len(t13s) != 1 || len(t13s[0].Rows) != 1 {
		t.Fatal("unexpected table shape")
	}
	// At 128K the proposed scheme must beat both baselines (columns:
	// size, bluesmpi, proposed, intelmpi, ...).
	row := t13s[0].Rows[0]
	var blues, prop, intel float64
	for i, v := range []*float64{&blues, &prop, &intel} {
		f, err := strconv.ParseFloat(row[i+1], 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[i+1])
		}
		*v = f
	}
	if prop >= blues || prop >= intel {
		t.Fatalf("proposed (%v) must beat BluesMPI (%v) and IntelMPI (%v) at 128K", prop, blues, intel)
	}
	if len(t14s[0].Rows) != 1 {
		t.Fatal("fig14 table empty")
	}
}

func TestFig11And12SmallScale(t *testing.T) {
	t11, t12 := Fig11And12(2, 2, 1, 1, []int{128})
	if len(t11.Rows) != 1 || len(t12.Rows) != 1 {
		t.Fatal("stencil tables wrong shape")
	}
}

func TestFig15SmallScale(t *testing.T) {
	tab := Fig15(2, 2, []int{8 << 10}, 1, 1, true)
	if len(tab.Rows) != 1 {
		t.Fatal("fig15 table wrong shape")
	}
}

func TestFig16SmallScale(t *testing.T) {
	tab := Fig16(2, 2, 64, []int{64}, 1)
	if len(tab.Rows) != 1 {
		t.Fatal("fig16 table wrong shape")
	}
	prof := Fig16C(2, 2, 64, 64, 1)
	if len(prof.Rows) != 3 {
		t.Fatal("fig16c table wrong shape")
	}
}

func TestFig17SmallScale(t *testing.T) {
	tab := Fig17(2, 2, 1, 128, []int{5})
	if len(tab.Rows) != 1 {
		t.Fatal("fig17 table wrong shape")
	}
}

func TestExtTablesSmallScale(t *testing.T) {
	if tab := ExtBF3(2, 2, []int{8 << 10}, 1, 1); len(tab.Rows) != 1 {
		t.Fatal("ext-bf3 wrong shape")
	}
	if tab := ExtIallgather(2, 2, []int{8 << 10}, 1, 1); len(tab.Rows) != 1 {
		t.Fatal("ext-allgather wrong shape")
	}
}
