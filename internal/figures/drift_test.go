package figures

import (
	"bytes"
	"strings"
	"testing"
)

// The drift figure must render byte-identically at any sweep worker count
// (the determinism contract every figure sweep carries). A short
// foreground run is enough for the contract — the full-length crossover
// claim is asserted by the bench snapshot tests.
func TestDriftFigureDeterministicAcrossParallelism(t *testing.T) {
	render := func(workers int) string {
		var buf bytes.Buffer
		withParallelism(t, workers, func() {
			Drift(2, 2, 16).Fprint(&buf)
		})
		return buf.String()
	}
	serial := render(1)
	parallel := render(4)
	if serial != parallel {
		t.Fatalf("drift figure diverges between worker counts:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
	for _, pol := range []string{"gvmi", "hostdirect", "measure", "feedback"} {
		if !strings.Contains(serial, pol) {
			t.Fatalf("drift figure is missing the %s row:\n%s", pol, serial)
		}
	}
}
