package figures

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/bench"
)

// ScaleTable renders the scaling snapshot (ROADMAP item 1: the fig13/fig14
// claims re-checked beyond the paper's 16 nodes, up to 1024 ranks).
func ScaleTable(s bench.ScaleSnapshot) *bench.Table {
	t := &bench.Table{
		Title: fmt.Sprintf("Scale: Ialltoall overall time, %s per peer x %d PPN (us)",
			bench.SizeLabel(s.Config.Size), s.Config.PPN),
		Headers: []string{"Ranks", "BluesMPI", "Proposed", "IntelMPI",
			"vs BluesMPI", "vs IntelMPI", "Overlap(P)"},
	}
	for _, pt := range s.Series {
		b := pt.Scheme(baseline.NameBluesMPI)
		p := pt.Scheme(baseline.NameProposed)
		in := pt.Scheme(baseline.NameIntelMPI)
		t.AddRow(fmt.Sprintf("%d", pt.Ranks),
			bench.F2(float64(b.OverallNS)/1e3), bench.F2(float64(p.OverallNS)/1e3),
			bench.F2(float64(in.OverallNS)/1e3),
			bench.Pct(pt.VsBluesMPIPct), bench.Pct(pt.VsIntelMPIPct),
			bench.Pct(p.OverlapPct))
	}
	t.Notes = append(t.Notes,
		"paper stops at 16 nodes; this sweep re-checks the fig13/fig14 ordering up to 1024 ranks")
	return t
}
