package figures

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/bench"
)

// PolicyAblation sweeps the nonblocking Ialltoall of the Figure 13 loop
// across every offload-policy bundle: the three fixed datapaths
// (host-direct, staged, cross-GVMI), the size/op-class adaptive rule, and
// the online measuring policy. The acceptance bar is that the adaptive
// column matches or beats the best fixed datapath at every size — it may
// tie (it picks one of the fixed paths), it must never lose.
//
// only restricts the sweep to a single bundle (the -policy flag); empty
// runs all of them.
func PolicyAblation(nodes, ppn int, sizes []int, warmup, iters int, only string) *bench.Table {
	policies := baseline.PolicyNames()
	if only != "" {
		policies = []string{only}
	}
	t := &bench.Table{
		Title:   fmt.Sprintf("Policy ablation: Ialltoall overall time across offload policies, %d nodes x %d PPN (us)", nodes, ppn),
		Headers: append([]string{"Size"}, policies...),
	}
	res := make([]bench.NBCResult, len(sizes)*len(policies))
	bench.Sweep(len(res), func(j int, env bench.SweepEnv) {
		size := sizes[j/len(policies)]
		pol := policies[j%len(policies)]
		res[j] = bench.MeasureIalltoall(env.Attach(bench.Options{
			Nodes: nodes, PPN: ppn, Policy: pol,
		}), size, warmup, iters)
	})
	for i, size := range sizes {
		row := []string{bench.SizeLabel(size)}
		for p := range policies {
			row = append(row, bench.F2(res[i*len(policies)+p].Overall.Micros()))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"fixed bundles reproduce the scheme presets (gvmi=Proposed, bluesmpi=BluesMPI, hostdirect=IntelMPI) bit-exactly;",
		"adaptive picks per (op-class, size) with no feedback; measure probes each proxy path then freezes on the cheapest")
	return t
}
