package figures

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/bench"
)

// Ablations isolates the design choices DESIGN.md calls out: the
// registration caches (Challenge 3), the group-request cache (Section
// VII-D), the GVMI-vs-staging mechanism (Section V), and the number of
// proxies per DPU (Section VII-A).
func Ablations(ppn, warmup, iters int) []*bench.Table {
	const nodes = 4
	sizes := []int{8 << 10, 64 << 10, 256 << 10}
	var tables []*bench.Table

	// 1. Registration caches on/off (basic primitives, repeated buffers).
	t := &bench.Table{
		Title:   fmt.Sprintf("Ablation: GVMI/IB registration caches, basic primitives, %d nodes x %d PPN (us)", nodes, ppn),
		Headers: []string{"Size", "Caches ON", "Caches OFF", "Saving"},
	}
	on := baseline.ProposedConfig()
	off := baseline.ProposedConfig()
	off.RegCaches = false
	regRes := make([]bench.NBCResult, 2*len(sizes))
	bench.Sweep(len(regRes), func(j int, env bench.SweepEnv) {
		cfg := &on
		if j%2 == 1 {
			cfg = &off
		}
		regRes[j] = bench.MeasureScatterDest(env.Attach(bench.Options{Nodes: nodes, PPN: ppn, Scheme: baseline.NameProposed, Core: cfg}), sizes[j/2], warmup, iters, true)
	})
	for i, size := range sizes {
		a, b := regRes[2*i], regRes[2*i+1]
		t.AddRow(bench.SizeLabel(size),
			bench.F2(a.Overall.Micros()), bench.F2(b.Overall.Micros()),
			bench.Pct(100*(1-float64(a.Overall)/float64(b.Overall))))
	}
	t.Notes = append(t.Notes, "without caches every transfer re-registers on host and DPU (Figure 5 costs, per message)")
	tables = append(tables, t)

	// 2. Group-request cache on/off.
	t = &bench.Table{
		Title:   fmt.Sprintf("Ablation: group-request cache, group primitives, %d nodes x %d PPN (us)", nodes, ppn),
		Headers: []string{"Size", "Cache ON", "Cache OFF", "Saving"},
	}
	gOn := baseline.ProposedConfig()
	gOff := baseline.ProposedConfig()
	gOff.GroupCache = false
	grpRes := make([]bench.NBCResult, 2*len(sizes))
	bench.Sweep(len(grpRes), func(j int, env bench.SweepEnv) {
		cfg := &gOn
		if j%2 == 1 {
			cfg = &gOff
		}
		grpRes[j] = bench.MeasureScatterDest(env.Attach(bench.Options{Nodes: nodes, PPN: ppn, Scheme: baseline.NameProposed, Core: cfg}), sizes[j/2], warmup, iters, false)
	})
	for i, size := range sizes {
		a, b := grpRes[2*i], grpRes[2*i+1]
		t.AddRow(bench.SizeLabel(size),
			bench.F2(a.Overall.Micros()), bench.F2(b.Overall.Micros()),
			bench.Pct(100*(1-float64(a.Overall)/float64(b.Overall))))
	}
	t.Notes = append(t.Notes, "cache hit ships only the request ID; miss re-gathers metadata and re-sends the whole entry queue")
	tables = append(tables, t)

	// 3. Mechanism: GVMI vs staging under the identical group schedule.
	t = &bench.Table{
		Title:   fmt.Sprintf("Ablation: GVMI vs staging mechanism, group Ialltoall, %d nodes x %d PPN (us)", nodes, ppn),
		Headers: []string{"Size", "GVMI", "Staging", "Saving"},
	}
	stg := baseline.StagingNoWarmupConfig()
	mechRes := make([]bench.NBCResult, 2*len(sizes))
	bench.Sweep(len(mechRes), func(j int, env bench.SweepEnv) {
		if j%2 == 0 {
			mechRes[j] = bench.MeasureIalltoall(env.Attach(bench.Options{Nodes: nodes, PPN: ppn, Scheme: baseline.NameProposed}), sizes[j/2], warmup, iters)
		} else {
			mechRes[j] = bench.MeasureIalltoall(env.Attach(bench.Options{Nodes: nodes, PPN: ppn, Scheme: baseline.NameBluesMPI, Core: &stg}), sizes[j/2], warmup, iters)
		}
	})
	for i, size := range sizes {
		a, b := mechRes[2*i], mechRes[2*i+1]
		t.AddRow(bench.SizeLabel(size),
			bench.F2(a.PureComm.Micros()), bench.F2(b.PureComm.Micros()),
			bench.Pct(100*(1-float64(a.PureComm)/float64(b.PureComm))))
	}
	t.Notes = append(t.Notes, "same schedule and caches; only the data path differs (Figure 6)")
	tables = append(tables, t)

	// 4. Proxies per DPU.
	t = &bench.Table{
		Title:   fmt.Sprintf("Ablation: proxies per DPU, Proposed Ialltoall 64K, %d nodes x %d PPN (us)", nodes, ppn),
		Headers: []string{"Proxies", "Overall", "Overlap"},
	}
	proxyCounts := []int{1, 2, 4, 8}
	pxRes := make([]bench.NBCResult, len(proxyCounts))
	bench.Sweep(len(pxRes), func(j int, env bench.SweepEnv) {
		pxRes[j] = bench.MeasureIalltoall(env.Attach(bench.Options{
			Nodes: nodes, PPN: ppn, Scheme: baseline.NameProposed, ProxiesPerDPU: proxyCounts[j],
		}), 64<<10, warmup, iters)
	})
	for i, nproxies := range proxyCounts {
		t.AddRow(fmt.Sprint(nproxies), bench.F2(pxRes[i].Overall.Micros()), bench.Pct(pxRes[i].Overlap))
	}
	t.Notes = append(t.Notes,
		"more workers spread control handling across ARM cores (proxy = rank %% proxies_per_dpu);",
		"near-flat results mean the shared DPU port, not ARM handling, bounds this scale")
	tables = append(tables, t)

	return tables
}
