package figures

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/sim"
)

// Tenants runs the multi-tenant crossover sweep: a latency-bound foreground
// job under each offload policy, against increasing background bulk load on
// a single shared proxy ARM worker per node. The table locates the point
// where the loaded proxy flips the offload win — fixed offload loses to
// host-direct while the adaptive policy routes around the contention.
func Tenants(nodes, ppn, iters int) *bench.Table {
	t := &bench.Table{
		Title: fmt.Sprintf("Tenants: fg tail latency & aggregate goodput vs background load, %d nodes x %d PPN/job, 1 proxy/DPU",
			nodes, ppn),
		Headers: []string{"BG jobs", "FG policy", "FG p50 (us)", "FG p99 (us)", "Goodput GB/s", "Makespan (us)"},
	}
	for _, p := range bench.TenantsSeries(nil, nodes, ppn, iters) {
		t.AddRow(fmt.Sprintf("%d", p.BgJobs), p.FgPolicy,
			bench.F2(sim.Time(p.FgP50NS).Micros()),
			bench.F2(sim.Time(p.FgP99NS).Micros()),
			bench.F2(p.GoodputGBps),
			bench.F2(sim.Time(p.MakespanNS).Micros()))
	}
	t.Notes = append(t.Notes,
		"loaded proxy: fixed offload (gvmi) p99 climbs past hostdirect; adaptive ties hostdirect by routing small messages to the host path",
		"weights and FIFO fallback: see internal/tenant (per-tenant proxy fair scheduling)")
	return t
}
