package figures

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/cluster"
)

// ExtBF3 explores the paper's future-work platform (Section X): the same
// Ialltoall comparison on a BlueField-3 + NDR testbed. Faster ARM cores
// shrink the host/DPU injection gap, so the offload schemes gain on both
// axes: lower proxy overheads and double the line rate.
func ExtBF3(nodes, ppn int, sizes []int, warmup, iters int) *bench.Table {
	t := &bench.Table{
		Title:   fmt.Sprintf("Extension: BlueField-3 + NDR (future work), Ialltoall overall time, %d nodes x %d PPN (us)", nodes, ppn),
		Headers: []string{"Size", "BF2 Proposed", "BF3 Proposed", "BF3 BluesMPI", "BF3 IntelMPI", "BF3 vs BF2"},
	}
	// Per size: one BF2 job followed by one job per BF3 scheme, in the
	// serial nesting order.
	stride := 1 + len(nbcSchemes)
	res := make([]bench.NBCResult, len(sizes)*stride)
	bench.Sweep(len(res), func(j int, env bench.SweepEnv) {
		size := sizes[j/stride]
		k := j % stride
		if k == 0 {
			res[j] = bench.MeasureIalltoall(env.Attach(bench.Options{
				Nodes: nodes, PPN: ppn, Scheme: baseline.NameProposed,
			}), size, warmup, iters)
			return
		}
		ccfg := cluster.BlueField3Config(nodes, ppn)
		res[j] = bench.MeasureIalltoall(env.Attach(bench.Options{
			Nodes: nodes, PPN: ppn, Scheme: nbcSchemes[k-1], Cluster: &ccfg,
		}), size, warmup, iters)
	})
	for si, size := range sizes {
		bf2 := res[si*stride]
		row := map[string]bench.NBCResult{}
		for ki, scheme := range nbcSchemes {
			row[scheme] = res[si*stride+1+ki]
		}
		t.AddRow(bench.SizeLabel(size),
			bench.F2(bf2.Overall.Micros()),
			bench.F2(row[baseline.NameProposed].Overall.Micros()),
			bench.F2(row[baseline.NameBluesMPI].Overall.Micros()),
			bench.F2(row[baseline.NameIntelMPI].Overall.Micros()),
			bench.Pct(100*(1-float64(row[baseline.NameProposed].Overall)/float64(bf2.Overall))))
	}
	t.Notes = append(t.Notes, "BF3 ARM overhead 350ns (vs 600ns), NDR 25 GB/s (vs HDR100 12.5 GB/s)")
	return t
}

// ExtIallgather compares the ring Iallgather across schemes — the
// collective reference [9] offloads by staging, implemented here over the
// Group primitives with ordering barriers (each forwarding step depends on
// the previous receive).
func ExtIallgather(nodes, ppn int, sizes []int, warmup, iters int) *bench.Table {
	t := &bench.Table{
		Title:   fmt.Sprintf("Extension: Iallgather (ref [9] workload) overall time, %d nodes x %d PPN (us)", nodes, ppn),
		Headers: []string{"Size", "BluesMPI", "Proposed", "IntelMPI", "Proposed overlap"},
	}
	nsch := len(nbcSchemes)
	res := make([]bench.NBCResult, len(sizes)*nsch)
	bench.Sweep(len(res), func(j int, env bench.SweepEnv) {
		res[j] = bench.MeasureIallgather(env.Attach(bench.Options{
			Nodes: nodes, PPN: ppn, Scheme: nbcSchemes[j%nsch],
		}), sizes[j/nsch], warmup, iters)
	})
	for si, size := range sizes {
		row := map[string]bench.NBCResult{}
		for ki, scheme := range nbcSchemes {
			row[scheme] = res[si*nsch+ki]
		}
		t.AddRow(bench.SizeLabel(size),
			bench.F2(row[baseline.NameBluesMPI].Overall.Micros()),
			bench.F2(row[baseline.NameProposed].Overall.Micros()),
			bench.F2(row[baseline.NameIntelMPI].Overall.Micros()),
			bench.Pct(row[baseline.NameProposed].Overlap))
	}
	t.Notes = append(t.Notes, "the host ring stalls between steps without CPU intervention; the offloaded ring chains on the proxies")
	return t
}
