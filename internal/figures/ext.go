package figures

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/cluster"
)

// ExtBF3 explores the paper's future-work platform (Section X): the same
// Ialltoall comparison on a BlueField-3 + NDR testbed. Faster ARM cores
// shrink the host/DPU injection gap, so the offload schemes gain on both
// axes: lower proxy overheads and double the line rate.
func ExtBF3(nodes, ppn int, sizes []int, warmup, iters int) *bench.Table {
	t := &bench.Table{
		Title:   fmt.Sprintf("Extension: BlueField-3 + NDR (future work), Ialltoall overall time, %d nodes x %d PPN (us)", nodes, ppn),
		Headers: []string{"Size", "BF2 Proposed", "BF3 Proposed", "BF3 BluesMPI", "BF3 IntelMPI", "BF3 vs BF2"},
	}
	for _, size := range sizes {
		bf2 := bench.MeasureIalltoall(bench.Options{
			Nodes: nodes, PPN: ppn, Scheme: baseline.NameProposed,
		}, size, warmup, iters)

		res := map[string]bench.NBCResult{}
		for _, scheme := range nbcSchemes {
			ccfg := cluster.BlueField3Config(nodes, ppn)
			res[scheme] = bench.MeasureIalltoall(bench.Options{
				Nodes: nodes, PPN: ppn, Scheme: scheme, Cluster: &ccfg,
			}, size, warmup, iters)
		}
		t.AddRow(bench.SizeLabel(size),
			bench.F2(bf2.Overall.Micros()),
			bench.F2(res[baseline.NameProposed].Overall.Micros()),
			bench.F2(res[baseline.NameBluesMPI].Overall.Micros()),
			bench.F2(res[baseline.NameIntelMPI].Overall.Micros()),
			bench.Pct(100*(1-float64(res[baseline.NameProposed].Overall)/float64(bf2.Overall))))
	}
	t.Notes = append(t.Notes, "BF3 ARM overhead 350ns (vs 600ns), NDR 25 GB/s (vs HDR100 12.5 GB/s)")
	return t
}

// ExtIallgather compares the ring Iallgather across schemes — the
// collective reference [9] offloads by staging, implemented here over the
// Group primitives with ordering barriers (each forwarding step depends on
// the previous receive).
func ExtIallgather(nodes, ppn int, sizes []int, warmup, iters int) *bench.Table {
	t := &bench.Table{
		Title:   fmt.Sprintf("Extension: Iallgather (ref [9] workload) overall time, %d nodes x %d PPN (us)", nodes, ppn),
		Headers: []string{"Size", "BluesMPI", "Proposed", "IntelMPI", "Proposed overlap"},
	}
	for _, size := range sizes {
		res := map[string]bench.NBCResult{}
		for _, scheme := range nbcSchemes {
			res[scheme] = bench.MeasureIallgather(bench.Options{
				Nodes: nodes, PPN: ppn, Scheme: scheme,
			}, size, warmup, iters)
		}
		t.AddRow(bench.SizeLabel(size),
			bench.F2(res[baseline.NameBluesMPI].Overall.Micros()),
			bench.F2(res[baseline.NameProposed].Overall.Micros()),
			bench.F2(res[baseline.NameIntelMPI].Overall.Micros()),
			bench.Pct(res[baseline.NameProposed].Overlap))
	}
	t.Notes = append(t.Notes, "the host ring stalls between steps without CPU intervention; the offloaded ring chains on the proxies")
	return t
}
