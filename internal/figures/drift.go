package figures

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/sim"
)

// Drift runs the mid-run drift scenario: a latency-bound foreground job
// (overlapped compute, where offload wins) under each offload policy,
// with chatty background tenants arriving mid-run and saturating the
// single shared proxy ARM worker per node. The table contrasts pre- and
// post-arrival foreground latency: fixed gvmi and the frozen Measuring
// policy stay stuck on the saturated proxy while the feedback policy
// re-probes and re-routes to host-direct.
func Drift(nodes, ppn, fgIters int) *bench.Table {
	t := &bench.Table{
		Title: fmt.Sprintf("Drift: fg latency before/after background arrival, %d nodes x %d PPN/job, 1 FIFO proxy/DPU",
			nodes, ppn),
		Headers: []string{"FG policy", "Pre p50 (us)", "Pre p99 (us)", "Post p50 (us)", "Post p99 (us)", "Reprobes"},
	}
	for _, p := range bench.DriftSeries(nil, nodes, ppn, fgIters) {
		t.AddRow(p.FgPolicy,
			bench.F2(sim.Time(p.PreP50N).Micros()),
			bench.F2(sim.Time(p.PreP99N).Micros()),
			bench.F2(sim.Time(p.PostP50N).Micros()),
			bench.F2(sim.Time(p.PostP99N).Micros()),
			fmt.Sprintf("%d", p.Reprobes))
	}
	t.Notes = append(t.Notes,
		"pre-drift: gvmi wins the overlapped-compute foreground; post-drift: frozen measure stays on the saturated proxy while feedback re-probes to hostdirect",
		"windows: pre = completed before background arrival, post = started after arrival + settle (see internal/bench DriftArrival/DriftSettle)")
	return t
}
