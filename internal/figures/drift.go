package figures

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/sim"
)

// Drift runs the mid-run drift scenario: a latency-bound foreground job
// (overlapped compute, where offload wins) under each offload policy,
// with chatty background tenants arriving mid-run and saturating the
// single shared proxy ARM worker per node. The table contrasts pre- and
// post-arrival foreground latency: fixed gvmi and the frozen Measuring
// policy stay stuck on the saturated proxy while the feedback policy
// re-probes and re-routes to host-direct.
func Drift(nodes, ppn, fgIters int) *bench.Table {
	t := &bench.Table{
		Title: fmt.Sprintf("Drift: fg latency before/after background arrival, %d nodes x %d PPN/job, 1 FIFO proxy/DPU",
			nodes, ppn),
		Headers: []string{"FG policy", "Pre p50 (us)", "Pre p99 (us)", "Post p50 (us)", "Post p99 (us)", "Reprobes"},
	}
	for _, p := range bench.DriftSeries(nil, nodes, ppn, fgIters) {
		t.AddRow(p.FgPolicy,
			bench.F2(sim.Time(p.PreP50N).Micros()),
			bench.F2(sim.Time(p.PreP99N).Micros()),
			bench.F2(sim.Time(p.PostP50N).Micros()),
			bench.F2(sim.Time(p.PostP99N).Micros()),
			fmt.Sprintf("%d", p.Reprobes))
	}
	t.Notes = append(t.Notes,
		"pre-drift: gvmi wins the overlapped-compute foreground; post-drift: frozen measure stays on the saturated proxy while feedback re-probes to hostdirect",
		"windows: pre = completed before background arrival, post = started after arrival + settle (see internal/bench DriftArrival/DriftSettle)")
	return t
}

// driftAttribLayers is the attribution table's fixed layer column order
// (descending the stack from the collective API to the wire); layers
// outside the list fold into the "other" column.
var driftAttribLayers = []string{"coll", "mpi", "core", "verbs", "fabric"}

// DriftAttributionTable renders phase-by-phase critical-path decompositions
// (bench.AttributeDrift) as one table: per policy and phase, where the
// foreground collective's time went per layer, joined with the flight
// recorder's re-probe / proxy-backlog / SLO counters over the same window.
// Pure rendering — callers produce the attributions.
func DriftAttributionTable(atts []bench.DriftAttribution) *bench.Table {
	headers := []string{"FG policy", "Phase", "Roots", "p50 (us)", "p99 (us)", "Total (ms)"}
	for _, l := range driftAttribLayers {
		headers = append(headers, l+" %")
	}
	headers = append(headers, "other %", "Reprobes", "Max queue", "SLO viol")
	t := &bench.Table{
		Title:   "Drift attribution: fg collective critical-path time per layer, by phase",
		Headers: headers,
	}
	pct := func(part, total sim.Time) string {
		if total <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f", 100*float64(part)/float64(total))
	}
	for _, a := range atts {
		for _, p := range a.Phases {
			byLayer := map[string]sim.Time{}
			for _, r := range p.Rows {
				byLayer[r.Layer] += r.Time
			}
			row := []string{a.Policy, p.Phase, fmt.Sprintf("%d", p.Roots),
				bench.F2(p.P50.Micros()), bench.F2(p.P99.Micros()), bench.F2(p.Total.Millis())}
			var known sim.Time
			for _, l := range driftAttribLayers {
				known += byLayer[l]
				row = append(row, pct(byLayer[l], p.Total))
			}
			row = append(row, pct(p.Total-known, p.Total),
				fmt.Sprintf("%d", p.Reprobes),
				fmt.Sprintf("%.0f", p.MaxQueueDepth),
				fmt.Sprintf("%d", p.SLOViolations))
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes,
		"per-layer columns decompose the summed fg collective critical paths of each phase (they sum to 100% by the tiling invariant)",
		"reprobes / max queue / SLO violations come from the virtual-time flight recorder over the same phase window",
		"phases: pre = before background arrival, degraded = arrival..settle (re-probe happens here), post = steady state after settle")
	return t
}

// DriftAttribution runs the drift scenario for the frozen Measuring policy
// and the feedback policy with span tracing and a flight recorder attached,
// and renders the attribution table — the "why" behind the Drift table's
// re-route win: post-drift, measure's collective time concentrates in the
// saturated proxy layers while feedback's moves back to the host path.
func DriftAttribution(nodes, ppn, fgIters int) *bench.Table {
	atts, _, err := bench.MeasureDriftAttribution(nodes, ppn, fgIters)
	if err != nil {
		panic(fmt.Sprintf("figures: drift attribution: %v", err))
	}
	return DriftAttributionTable(atts)
}
