package figures

import (
	"fmt"

	"repro/internal/bench"
)

// FleetTable renders the mixed-fleet policy comparison: one row per policy
// bundle on the half-BlueField-2 / half-BlueField-3 cluster, with the
// capability-aware margin over the best fixed path and over the
// capability-blind adaptive rule called out in the notes.
func FleetTable(s bench.FleetSnapshot) *bench.Table {
	t := &bench.Table{
		Title: fmt.Sprintf("Mixed fleet (%s): pairwise exchange, %s, mean over ranks (us)",
			s.Fleet, bench.SizeLabel(s.Size)),
		Headers: []string{"Policy", "Pure", "Overall", "Overlap"},
	}
	for _, p := range s.Mixed {
		t.AddRow(p.Policy,
			bench.F2(float64(p.PureNS)/1e3),
			bench.F2(float64(p.OverallNS)/1e3),
			bench.Pct(p.OverlapPct))
	}
	t.Notes = append(t.Notes,
		"aware = per-device cutoffs: BlueField-3 senders offload, BlueField-2 senders stay host",
		"adaptive is capability-blind (one cutoff for the whole fleet) and leaves the margin on the table")
	return t
}
